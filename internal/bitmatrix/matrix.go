// Package bitmatrix implements the dense bit matrices used by VertexSurge.
//
// The central type is Matrix, a bit matrix stored in the paper's "stacked
// columnar major" format (§4.2): rows are partitioned into stacks of 512, and
// within each stack the 512 bits of one column are stored contiguously as
// eight 64-bit words — exactly one cache line. Expanding one edge (k → j)
// for all 512 sources of a stack is then a single column-wide OR
// (OrColumnFrom), the Go equivalent of the paper's VPORD-based or_column.
//
// The package also provides Bitmap, a flat 1-D bit set used for BFS
// frontiers, visited sets, and label membership.
package bitmatrix

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	// StackRows is the number of rows per stack. The paper packs 512 rows
	// so that one column of one stack is a 64-byte cache line.
	StackRows = 512
	// WordsPerColumn is the number of 64-bit words holding one column of
	// one stack.
	WordsPerColumn = StackRows / 64
)

// Matrix is a dense bit matrix in stacked columnar-major layout.
//
// Conceptually it has Rows × Cols bits. Physically the rows are grouped into
// ceil(Rows/512) stacks; within stack s, the bits of column c occupy the
// eight consecutive words starting at word index (s*Cols+c)*8. Bit r of a
// column (0 ≤ r < 512) lives in word r/64 at bit position r%64.
//
// The zero value is an empty 0×0 matrix; use New to create a sized one.
type Matrix struct {
	rows   int
	cols   int
	stacks int
	words  []uint64
}

// New returns an all-zero matrix with the given number of rows and columns.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitmatrix: invalid dimensions %d×%d", rows, cols))
	}
	stacks := (rows + StackRows - 1) / StackRows
	return &Matrix{
		rows:   rows,
		cols:   cols,
		stacks: stacks,
		words:  make([]uint64, stacks*cols*WordsPerColumn),
	}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Stacks returns the number of 512-row stacks.
func (m *Matrix) Stacks() int { return m.stacks }

// SizeBytes returns the memory footprint of the bit storage in bytes.
func (m *Matrix) SizeBytes() int { return len(m.words) * 8 }

// Words exposes the raw backing words. It is intended for kernels and
// serialization; the layout is documented on Matrix.
func (m *Matrix) Words() []uint64 { return m.words }

// columnBase returns the word index of the first word of column c in stack s.
func (m *Matrix) columnBase(stack, c int) int {
	return (stack*m.cols + c) * WordsPerColumn
}

// ColumnWords returns the eight words of column c within stack s as a
// mutable slice view, or nil when (stack, c) is out of range. The
// explicit range guard (rather than letting the slice expression panic)
// is what lets the compiler's prove pass drop the bounds checks both here
// and in callers that index the fixed-length result — the kernels branch
// on len() once instead of paying a check per word.
func (m *Matrix) ColumnWords(stack, c int) []uint64 {
	// Single load of the field: prove cannot connect a guard on
	// len(m.words) to a later reload of m.words, a local can. The
	// `base > len(w)-WordsPerColumn` form is overflow-safe, which the
	// additive form is not — prove rejects guards that could wrap.
	w := m.words
	base := m.columnBase(stack, c)
	// hi is computed once so the guard compares the exact SSA values the
	// slice expression uses; the cap clause looks redundant (words is made
	// with len == cap) but the expression is checked against cap, and for
	// a heap-loaded slice header prove has no len <= cap fact to lean on.
	hi := base + WordsPerColumn
	if base < 0 || hi < base || hi > len(w) || hi > cap(w) {
		return nil
	}
	return w[base:hi:hi]
}

// Set sets bit (r, c) to 1.
//
//vs:hotpath
func (m *Matrix) Set(r, c int) {
	m.boundsCheck(r, c)
	stack, off := r/StackRows, r%StackRows
	// The uint guard restates what boundsCheck already proved in a form
	// the SSA prove pass can consume, eliminating the bounds check.
	w := m.words
	if i := m.columnBase(stack, c) + off/64; uint(i) < uint(len(w)) {
		w[i] |= 1 << uint(off%64)
	}
}

// Clear sets bit (r, c) to 0.
func (m *Matrix) Clear(r, c int) {
	m.boundsCheck(r, c)
	stack, off := r/StackRows, r%StackRows
	m.words[m.columnBase(stack, c)+off/64] &^= 1 << uint(off%64)
}

// Get reports whether bit (r, c) is 1.
func (m *Matrix) Get(r, c int) bool {
	m.boundsCheck(r, c)
	stack, off := r/StackRows, r%StackRows
	return m.words[m.columnBase(stack, c)+off/64]&(1<<uint(off%64)) != 0
}

func (m *Matrix) boundsCheck(r, c int) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("bitmatrix: index (%d,%d) out of range %d×%d", r, c, m.rows, m.cols))
	}
}

// OrColumnFrom ORs column srcCol of src (within the given stack) into column
// dstCol of m. Both matrices must have the same number of stacks. This is
// the or_column primitive of §4.2: one call replaces up to 512 set_bit
// operations.
//
//vs:hotpath
func (m *Matrix) OrColumnFrom(src *Matrix, stack, srcCol, dstCol int) {
	d := m.ColumnWords(stack, dstCol)
	s := src.ColumnWords(stack, srcCol)
	if len(d) < WordsPerColumn || len(s) < WordsPerColumn {
		return // out-of-range column: caller bug, but keep the kernel branch-only
	}
	// Eight explicit word ORs: the stand-in for a single VPORD on AVX-512.
	// After the len guard the constant indices are provably in range.
	d[0] |= s[0]
	d[1] |= s[1]
	d[2] |= s[2]
	d[3] |= s[3]
	d[4] |= s[4]
	d[5] |= s[5]
	d[6] |= s[6]
	d[7] |= s[7]
}

// TouchColumn reads one word of column c in the given stack and returns it.
// It is the software-prefetch stand-in: a demand load of the first word
// pulls the column's cache line, as the paper's prefetcht0 would.
//
//vs:hotpath
func (m *Matrix) TouchColumn(stack, c int) uint64 {
	w := m.words
	if i := m.columnBase(stack, c); uint(i) < uint(len(w)) {
		return w[i]
	}
	return 0
}

// Or computes m |= other element-wise. The matrices must have identical
// dimensions.
//
//vs:hotpath
func (m *Matrix) Or(other *Matrix) {
	m.dimCheck(other)
	// dimCheck makes the slices equal length; restating that as a branch
	// is what lets the prove pass drop the per-word bounds check (a
	// conditional reslice does not survive the phi merge).
	a, b := m.words, other.words
	if len(a) != len(b) {
		return
	}
	for i, w := range b {
		a[i] |= w
	}
}

// And computes m &= other element-wise.
//
//vs:hotpath
func (m *Matrix) And(other *Matrix) {
	m.dimCheck(other)
	a, b := m.words, other.words
	if len(a) != len(b) {
		return
	}
	for i, w := range b {
		a[i] &= w
	}
}

// AndNot computes m &^= other element-wise. It is used to exclude visited
// vertices from a freshly expanded frontier (SHORTEST semantics, §4).
//
//vs:hotpath
func (m *Matrix) AndNot(other *Matrix) {
	m.dimCheck(other)
	a, b := m.words, other.words
	if len(a) != len(b) {
		return
	}
	for i, w := range b {
		a[i] &^= w
	}
}

// Xor computes m ^= other element-wise (the paper's VPXORD use case).
//
//vs:hotpath
func (m *Matrix) Xor(other *Matrix) {
	m.dimCheck(other)
	a, b := m.words, other.words
	if len(a) != len(b) {
		return
	}
	for i, w := range b {
		a[i] ^= w
	}
}

func (m *Matrix) dimCheck(other *Matrix) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("bitmatrix: dimension mismatch %d×%d vs %d×%d",
			m.rows, m.cols, other.rows, other.cols))
	}
}

// Reset zeroes every bit, retaining the allocation.
func (m *Matrix) Reset() {
	clear(m.words)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, stacks: m.stacks, words: make([]uint64, len(m.words))}
	copy(c.words, m.words)
	return c
}

// CopyFrom overwrites m's bits with other's. Dimensions must match.
func (m *Matrix) CopyFrom(other *Matrix) {
	m.dimCheck(other)
	copy(m.words, other.words)
}

// Equal reports whether m and other have the same dimensions and bits.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i, w := range m.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// PopCount returns the total number of set bits. Ghost rows (padding beyond
// Rows in the final stack) are never set by the exported mutators, so no
// masking is needed.
func (m *Matrix) PopCount() int {
	n := 0
	for _, w := range m.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (m *Matrix) Any() bool {
	for _, w := range m.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ColumnPopCount returns the number of set bits in column c across all
// stacks.
func (m *Matrix) ColumnPopCount(c int) int {
	n := 0
	for s := 0; s < m.stacks; s++ {
		base := m.columnBase(s, c)
		for w := 0; w < WordsPerColumn; w++ {
			n += bits.OnesCount64(m.words[base+w])
		}
	}
	return n
}

// RowPopCounts returns, for every row, the number of set bits in that row.
// It runs in time proportional to the number of set bits plus the number of
// column words, never materializing a transpose.
func (m *Matrix) RowPopCounts() []int {
	counts := make([]int, m.rows)
	for s := 0; s < m.stacks; s++ {
		rowBase := s * StackRows
		for c := 0; c < m.cols; c++ {
			base := m.columnBase(s, c)
			for w := 0; w < WordsPerColumn; w++ {
				word := m.words[base+w]
				for word != 0 {
					tz := bits.TrailingZeros64(word)
					counts[rowBase+w*64+tz]++
					word &= word - 1
				}
			}
		}
	}
	return counts
}

// ForEachInColumn calls fn for every set row of column c, in increasing row
// order, using trailing-zero scanning (the paper's ctz loop).
func (m *Matrix) ForEachInColumn(c int, fn func(row int)) {
	for s := 0; s < m.stacks; s++ {
		base := m.columnBase(s, c)
		rowBase := s * StackRows
		for w := 0; w < WordsPerColumn; w++ {
			word := m.words[base+w]
			for word != 0 {
				tz := bits.TrailingZeros64(word)
				fn(rowBase + w*64 + tz)
				word &= word - 1
			}
		}
	}
}

// ForEachSet calls fn for every set bit, in column-major order within each
// stack (ascending stack, then column, then row).
func (m *Matrix) ForEachSet(fn func(row, col int)) {
	for s := 0; s < m.stacks; s++ {
		rowBase := s * StackRows
		for c := 0; c < m.cols; c++ {
			base := m.columnBase(s, c)
			for w := 0; w < WordsPerColumn; w++ {
				word := m.words[base+w]
				for word != 0 {
					tz := bits.TrailingZeros64(word)
					fn(rowBase+w*64+tz, c)
					word &= word - 1
				}
			}
		}
	}
}

// RowBits returns the set columns of row r as a slice, in ascending order.
// It scans every column and is intended for result extraction and tests,
// not inner loops.
func (m *Matrix) RowBits(r int) []int {
	var out []int
	stack, off := r/StackRows, r%StackRows
	w, mask := off/64, uint64(1)<<uint(off%64)
	for c := 0; c < m.cols; c++ {
		if m.words[m.columnBase(stack, c)+w]&mask != 0 {
			out = append(out, c)
		}
	}
	return out
}

// ColumnBits returns the set rows of column c as a slice, in ascending order.
func (m *Matrix) ColumnBits(c int) []int {
	var out []int
	m.ForEachInColumn(c, func(row int) { out = append(out, row) })
	return out
}

// String renders the matrix as rows of 0/1 characters. Intended only for
// debugging small matrices.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if m.Get(r, c) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
