#!/usr/bin/env bash
# verify.sh — the race-clean CI gate. Runs the full static-analysis and
# test battery; every PR must pass this script.
#
# Usage:
#   scripts/verify.sh            # full gate (build, vet, gofmt, vslint, tests, -race, fuzz, smoke)
#   FUZZTIME=30s scripts/verify.sh   # longer fuzz smoke
#   SKIP_FUZZ=1 scripts/verify.sh    # skip the fuzz smoke (e.g. constrained machines)
#   SKIP_SMOKE=1 scripts/verify.sh   # skip the vsserve end-to-end smoke
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

step() { printf '\n==> %s\n' "$*"; }

step "go build ./..."
go build ./...

step "gofmt check"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "vslint (hot-path + concurrency invariants)"
go run ./cmd/vslint ./...

step "go test ./..."
go test ./...

step "go test -race ./..."
go test -race ./...

if [ -z "${SKIP_FUZZ:-}" ]; then
    step "fuzz smoke (${FUZZTIME} each)"
    go test -run='^$' -fuzz=FuzzCypherParse -fuzztime="$FUZZTIME" ./internal/cypher
    go test -run='^$' -fuzz=FuzzHilbertRoundTrip -fuzztime="$FUZZTIME" ./internal/hilbert
fi

if [ -z "${SKIP_SMOKE:-}" ]; then
    step "vsserve smoke (generate, serve, query, scrape /metrics)"
    smokedir="$(mktemp -d)"
    serverpid=""
    cleanup() {
        [ -n "$serverpid" ] && kill "$serverpid" 2>/dev/null || true
        rm -rf "$smokedir"
    }
    trap cleanup EXIT

    go run ./cmd/vsgen -dataset LastFM -scale 0.05 -out "$smokedir/graph" >/dev/null
    go build -o "$smokedir/vsserve" ./cmd/vsserve
    "$smokedir/vsserve" -data "$smokedir/graph" -addr 127.0.0.1:0 -access-log=false \
        > "$smokedir/stdout" 2> "$smokedir/stderr" &
    serverpid=$!

    # vsserve prints "serving <dir> (...) on <addr>" once the listener is
    # bound; scrape the real port from that line.
    hostport=""
    for _ in $(seq 1 50); do
        hostport="$(sed -n 's/^serving .* on //p' "$smokedir/stdout")"
        [ -n "$hostport" ] && break
        kill -0 "$serverpid" 2>/dev/null || { cat "$smokedir/stderr" >&2; echo "vsserve exited early" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$hostport" ] || { echo "vsserve never announced its address" >&2; exit 1; }

    curl -fsS "http://$hostport/healthz" | grep -q ok
    curl -fsS "http://$hostport/query" \
        -d '{"query":"MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q)","profile":true}' \
        | grep -q '"profile"'
    metrics="$(curl -fsS "http://$hostport/metrics")"
    echo "$metrics" | grep -q '^vs_queries_total 1$' \
        || { echo "vs_queries_total did not reach 1:" >&2; echo "$metrics" | grep vs_queries >&2; exit 1; }
    echo "$metrics" | grep -q 'vs_query_stage_seconds_count{stage="total"} 1' \
        || { echo "stage histogram missing:" >&2; echo "$metrics" | grep stage >&2; exit 1; }
fi

step "verify OK"
