package repl

import (
	"strings"
	"testing"
)

func TestExplainStatement(t *testing.T) {
	out := session(t, "EXPLAIN MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q);\n")
	if strings.Contains(out, "error:") {
		t.Fatalf("EXPLAIN failed:\n%s", out)
	}
	if strings.Contains(out, "est/act") {
		t.Fatalf("plain EXPLAIN rendered the analyze table:\n%s", out)
	}
}

func TestExplainAnalyzeStatement(t *testing.T) {
	out := session(t, "EXPLAIN ANALYZE MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q);\n")
	if strings.Contains(out, "error:") {
		t.Fatalf("EXPLAIN ANALYZE failed:\n%s", out)
	}
	for _, want := range []string{"est/act", "expand", "row(s), total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in analyze output:\n%s", want, out)
		}
	}
}
