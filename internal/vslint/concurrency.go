package vslint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the shared substrate of the concurrency tier (guarded-by,
// atomic-consistency, channel-hygiene): goroutine reachability over the
// call graph, a per-function may-held lockset scan built on the CFG, and
// the entry-lockset propagation that threads held locks through call
// chains. The tier's soundness posture mirrors lock-order: held-lock facts
// are computed as may-held (union over paths), entry locksets as the
// must-intersection over call sites, and go-spawned calls contribute the
// empty lockset — so the analysis errs toward silence on branchy locking
// rather than toward false races.

// spawnInfo records how a function becomes reachable from a go statement:
// the spawning edge at the head of the chain and the predecessor in the
// reachability walk, for witness rendering.
type spawnInfo struct {
	spawn  *CallEdge
	prev   *FuncNode
	approx bool
}

// goReachable computes every function the call graph can reach from a
// go-spawned callee. Two passes keep witnesses honest: the first follows
// only edges the type system guarantees, the second fills the remainder
// through approximate (iface/sig) dispatch and marks those entries approx
// so dependent findings demote to info severity.
func goReachable(g *CallGraph) map[*FuncNode]*spawnInfo {
	reach := make(map[*FuncNode]*spawnInfo)
	for _, exactOnly := range []bool{true, false} {
		var queue []*FuncNode
		for _, n := range g.Nodes {
			for _, e := range n.Out {
				if !e.Go || e.Callee == nil || e.Callee == g.Unknown || e.Callee.Body() == nil {
					continue
				}
				if exactOnly && e.Kind.Approx() {
					continue
				}
				if _, ok := reach[e.Callee]; ok {
					continue
				}
				reach[e.Callee] = &spawnInfo{spawn: e, approx: e.Kind.Approx()}
				queue = append(queue, e.Callee)
			}
		}
		if !exactOnly {
			// Re-seed everything already reached so approximate edges out
			// of exactly-reached nodes propagate on this pass too.
			for _, n := range g.Nodes {
				if _, ok := reach[n]; ok {
					queue = append(queue, n)
				}
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			ri := reach[n]
			for _, e := range n.Out {
				if e.Go || e.Callee == nil || e.Callee == g.Unknown || e.Callee.Body() == nil {
					continue
				}
				if exactOnly && e.Kind.Approx() {
					continue
				}
				if _, ok := reach[e.Callee]; ok {
					continue
				}
				reach[e.Callee] = &spawnInfo{
					spawn:  ri.spawn,
					prev:   n,
					approx: ri.approx || e.Kind.Approx(),
				}
				queue = append(queue, e.Callee)
			}
		}
	}
	return reach
}

// spawnChain returns the go edge that starts n's reachability chain and
// the function names along it, spawned function first.
func spawnChain(reach map[*FuncNode]*spawnInfo, n *FuncNode) (*CallEdge, []string) {
	var names []string
	cur := n
	for {
		ri := reach[cur]
		names = append(names, cur.Name)
		if ri.prev == nil {
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
			return ri.spawn, names
		}
		cur = ri.prev
	}
}

// stackWalker drives walkStack: an ast.Visitor that maintains the
// ancestor stack (nearest last) for the callback.
type stackWalker struct {
	stack []ast.Node
	fn    func(n ast.Node, stack []ast.Node) bool
}

func (w *stackWalker) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		w.stack = w.stack[:len(w.stack)-1]
		return w
	}
	if !w.fn(n, w.stack) {
		return nil
	}
	w.stack = append(w.stack, n)
	return w
}

// walkStack walks root calling fn with each node and its ancestor stack
// (nearest last, seeded with base). Returning false skips the children.
func walkStack(root ast.Node, base []ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	ast.Walk(&stackWalker{stack: base, fn: fn}, root)
}

// inspectBlockNode is the stack-carrying analogue of inspectNode: it walks
// one CFG block node, unwrapping the synthetic wrappers, and seeds range
// headers with the RangeStmt so key/value positions classify as writes.
func inspectBlockNode(n ast.Node, fn func(ast.Node, []ast.Node) bool) {
	switch n := n.(type) {
	case condNode:
		walkStack(n.X, nil, fn)
	case *ast.RangeStmt:
		base := []ast.Node{n}
		if n.Key != nil {
			walkStack(n.Key, base, fn)
		}
		if n.Value != nil {
			walkStack(n.Value, base, fn)
		}
		walkStack(n.X, base, fn)
	default:
		walkStack(n, nil, fn)
	}
}

// writeContext classifies one expression occurrence as a write: it is an
// assignment or inc/dec target, a range key/value, or has its address
// taken (which hands out a mutable alias). Element writes through a map or
// slice field (x.f[k] = v) count as writes of the field: the race is on
// the container the field holds.
func writeContext(stack []ast.Node, node ast.Node) bool {
	cur := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			cur = parent
		case *ast.IndexExpr:
			if parent.X != cur {
				return false
			}
			cur = parent
		case *ast.StarExpr:
			cur = parent
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return parent.X == cur
		case *ast.UnaryExpr:
			return parent.Op == token.AND && parent.X == cur
		case *ast.RangeStmt:
			return parent.Key == cur || parent.Value == cur
		default:
			return false
		}
	}
	return false
}

// selField resolves sel to the struct field it denotes, or nil. Fields of
// generic instantiations normalize to their declared (origin) object so
// every instantiation shares one guarded-by record.
func selField(p *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v.Origin()
		}
	}
	return nil
}

// rootObj returns the object at the base of a selector/index/deref chain
// ("s" for s.reg.cursors[id]), or nil for dynamic bases.
func rootObj(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if o := p.Info.Uses[x]; o != nil {
				return o
			}
			return p.Info.Defs[x]
		default:
			return nil
		}
	}
}

// maxLockClasses bounds the per-function lockset bitset; a function
// touching more distinct global lock classes is dropped from the tier
// (silently: no facts, no findings) rather than analyzed wrong.
const maxLockClasses = 64

// fieldAccess is one read or write of a tracked struct field.
type fieldAccess struct {
	obj   *types.Var
	pos   token.Pos
	write bool
	// owned marks accesses through a fresh, non-escaping local allocation
	// (the constructor pattern): private memory cannot race.
	owned bool
	// held is the set of lock classes locally held at the access.
	held map[string]bool
}

// funcLockFlow is one function's lockset result: its tracked field
// accesses and, per call site, the lock classes held when the call runs.
type funcLockFlow struct {
	accesses []fieldAccess
	callHeld map[token.Pos]map[string]bool
}

const (
	itemAcquire = iota
	itemRelease
	itemAccess
	itemCall
)

// lockItem is one ordered event inside a basic block.
type lockItem struct {
	pos    token.Pos
	kind   int
	class  string
	access int // index into funcLockFlow.accesses for itemAccess
}

// mutexRelease matches a call of (R)Unlock on a sync.Mutex/RWMutex and
// returns the lock expression.
func mutexRelease(p *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if tn := namedTypeName(p.typeOf(sel.X)); tn != "Mutex" && tn != "RWMutex" {
		return nil, false
	}
	if sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock" {
		return nil, false
	}
	return sel.X, true
}

// scanLockFlow runs the may-held lockset flow over one function body,
// recording the locks held at each tracked field access and call site.
// Deferred unlocks deliberately do not kill their class: the lock stays
// held until return, which is exactly the guarded region. Returns nil when
// the function exceeds the lock-class bitset.
func scanLockFlow(p *Pass, n *FuncNode, track map[*types.Var]bool) *funcLockFlow {
	body := n.Body()
	fl := &funcLockFlow{callHeld: map[token.Pos]map[string]bool{}}
	classBits := map[string]int{}
	var classes []string
	overflow := false
	bitFor := func(class string) int {
		if b, ok := classBits[class]; ok {
			return b
		}
		if len(classes) >= maxLockClasses {
			overflow = true
			return 0
		}
		b := len(classes)
		classBits[class] = b
		classes = append(classes, class)
		return b
	}
	owned := freshLocals(p, body)

	cfg := BuildCFG(body)
	items := make([][]lockItem, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		bi := blk.Index
		for _, node := range blk.Nodes {
			deferred := false
			walkRoot := node
			if d, ok := node.(*ast.DeferStmt); ok {
				deferred = true
				walkRoot = d.Call
			}
			inspectBlockNode(walkRoot, func(x ast.Node, stack []ast.Node) bool {
				switch e := x.(type) {
				case *ast.FuncLit:
					return false // its own call-graph node
				case *ast.CallExpr:
					items[bi] = append(items[bi], lockItem{pos: e.Pos(), kind: itemCall})
					if lockExpr, ok := mutexAcquire(p, e); ok && !deferred {
						if class := globalLockClass(p, lockExpr); class != "" {
							items[bi] = append(items[bi], lockItem{pos: e.Pos(), kind: itemAcquire, class: class})
							bitFor(class)
						}
					} else if lockExpr, ok := mutexRelease(p, e); ok && !deferred {
						if class := globalLockClass(p, lockExpr); class != "" {
							items[bi] = append(items[bi], lockItem{pos: e.Pos(), kind: itemRelease, class: class})
							bitFor(class)
						}
					}
				case *ast.SelectorExpr:
					obj := selField(p, e)
					if obj == nil || !track[obj] {
						return true
					}
					idx := len(fl.accesses)
					fl.accesses = append(fl.accesses, fieldAccess{
						obj:   obj,
						pos:   e.Sel.Pos(),
						write: writeContext(stack, e),
						owned: ownedBase(p, e.X, owned),
					})
					items[bi] = append(items[bi], lockItem{pos: e.Pos(), kind: itemAccess, access: idx})
				}
				return true
			})
		}
		sort.SliceStable(items[bi], func(i, j int) bool { return items[bi][i].pos < items[bi][j].pos })
	}
	if overflow {
		return nil
	}

	// Forward may-held fixpoint: union at joins, acquire sets a bit,
	// non-deferred release clears it.
	apply := func(state uint64, its []lockItem) uint64 {
		for _, it := range its {
			switch it.kind {
			case itemAcquire:
				state |= 1 << uint(classBits[it.class])
			case itemRelease:
				state &^= 1 << uint(classBits[it.class])
			}
		}
		return state
	}
	in := make([]uint64, len(cfg.Blocks))
	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.Blocks {
			out := apply(in[blk.Index], items[blk.Index])
			for _, s := range blk.Succs {
				if in[s.Index]|out != in[s.Index] {
					in[s.Index] |= out
					changed = true
				}
			}
		}
	}
	maskSet := func(state uint64) map[string]bool {
		if state == 0 {
			return nil
		}
		set := make(map[string]bool)
		for i, class := range classes {
			if state&(1<<uint(i)) != 0 {
				set[class] = true
			}
		}
		return set
	}
	for _, blk := range cfg.Blocks {
		state := in[blk.Index]
		for _, it := range items[blk.Index] {
			switch it.kind {
			case itemAcquire:
				state |= 1 << uint(classBits[it.class])
			case itemRelease:
				state &^= 1 << uint(classBits[it.class])
			case itemAccess:
				fl.accesses[it.access].held = unionSet(fl.accesses[it.access].held, maskSet(state))
			case itemCall:
				if state != 0 {
					fl.callHeld[it.pos] = unionSet(fl.callHeld[it.pos], maskSet(state))
				}
			}
		}
	}
	return fl
}

// ownedBase reports whether the access base bottoms out in a fresh local.
func ownedBase(p *Pass, base ast.Expr, owned map[types.Object]bool) bool {
	if len(owned) == 0 {
		return false
	}
	o := rootObj(p, base)
	return o != nil && owned[o]
}

// freshLocals returns the locals assigned a fresh allocation (&T{...},
// T{...}, new(T)) in body that never escape it. Accesses through them are
// private to the function until published — the constructor pattern — so
// the race analyzer skips them.
func freshLocals(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok || !freshAlloc(unparen(as.Rhs[i])) {
				continue
			}
			obj := p.Info.Defs[id]
			if obj == nil {
				obj = p.Info.Uses[id]
			}
			if obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	if len(fresh) == 0 {
		return fresh
	}
	for obj := range escapedObjects(p, body, fresh) {
		delete(fresh, obj)
	}
	return fresh
}

func freshAlloc(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, ok := unparen(v.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := unparen(v.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// moduleLockFlows runs the lockset scan over every function in the graph.
func moduleLockFlows(mp *ModulePass, track map[*types.Var]bool) map[*FuncNode]*funcLockFlow {
	flows := make(map[*FuncNode]*funcLockFlow)
	for _, n := range mp.Graph.Nodes {
		if n.Pkg == nil || n.Body() == nil {
			continue
		}
		if fl := scanLockFlow(mp.passFor(n.Pkg), n, track); fl != nil {
			flows[n] = fl
		}
	}
	return flows
}

// entryLocksets propagates held locksets through the call graph: a
// function's entry lockset is the intersection, over its call sites, of
// each caller's entry set union the locks held at the call. Go edges
// contribute the empty set (a spawned goroutine starts with no caller
// locks — holding a lock across `go` does not protect the spawned body),
// and roots (no in-edges) start empty. The fixpoint is decreasing: a set
// only shrinks as more callers resolve, so termination is immediate.
func entryLocksets(g *CallGraph, flows map[*FuncNode]*funcLockFlow) map[*FuncNode]map[string]bool {
	entry := make(map[*FuncNode]map[string]bool)
	resolved := make(map[*FuncNode]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n == g.Unknown {
				continue
			}
			var acc map[string]bool
			any := false
			if len(n.In) == 0 {
				acc, any = map[string]bool{}, true
			}
			for _, e := range n.In {
				var contrib map[string]bool
				switch {
				case e.Go:
					contrib = map[string]bool{}
				case !resolved[e.Caller]:
					continue
				default:
					var held map[string]bool
					if fl := flows[e.Caller]; fl != nil {
						held = fl.callHeld[e.Pos]
					}
					contrib = unionSet(copySet(entry[e.Caller]), held)
				}
				if !any {
					acc, any = copySet(contrib), true
				} else {
					acc = intersectSet(acc, contrib)
				}
			}
			if !any {
				continue
			}
			if !resolved[n] || !sameSet(entry[n], acc) {
				entry[n], resolved[n] = acc, true
				changed = true
			}
		}
	}
	return entry
}

func unionSet(a, b map[string]bool) map[string]bool {
	if len(b) == 0 {
		return a
	}
	if a == nil {
		a = make(map[string]bool, len(b))
	}
	for k := range b {
		a[k] = true
	}
	return a
}

func copySet(a map[string]bool) map[string]bool {
	if a == nil {
		return nil
	}
	out := make(map[string]bool, len(a))
	for k := range a {
		out[k] = true
	}
	return out
}

func intersectSet(a, b map[string]bool) map[string]bool {
	for k := range a {
		if !b[k] {
			delete(a, k)
		}
	}
	return a
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

func sortedSetKeys(a map[string]bool) []string {
	out := make([]string, 0, len(a))
	for k := range a {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
