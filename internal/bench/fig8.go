package bench

import (
	"fmt"
	"io"

	"repro/internal/engine"
)

// Fig8Row is one case's per-stage time breakdown.
type Fig8Row struct {
	Case    int
	Dataset string
	Timings engine.Timings
}

// Fig8 regenerates Figure 8: the per-component execution-time breakdown of
// every case. The paper's shape: Expand averages ≈35% on Cases 1–5, <10%
// on 6–7 (Rabobank's small edge count), and ANY-type Cases 11–12 spend no
// time in UpdateVisit.
func Fig8(cfg Config) ([]Fig8Row, error) {
	ds := newDatasets(cfg)
	var rows []Fig8Row

	engSN, dSN, err := ds.engine("LDBC-SN-SF100")
	if err != nil {
		return nil, err
	}
	cpSN := paramsFor(dSN)
	const kmax = 3
	social := []struct {
		num int
		run func() (engine.Timings, error)
	}{
		{1, func() (engine.Timings, error) { _, tm, err := engSN.Case1(kmax); return tm, err }},
		{2, func() (engine.Timings, error) { _, tm, err := engSN.Case2(kmax, 100); return tm, err }},
		{3, func() (engine.Timings, error) { _, tm, err := engSN.Case3(kmax, 100); return tm, err }},
		{4, func() (engine.Timings, error) { _, tm, err := engSN.Case4(2); return tm, err }},
		{5, func() (engine.Timings, error) { _, tm, err := engSN.Case5(cpSN.personIDs, kmax); return tm, err }},
	}
	for _, s := range social {
		if _, err := s.run(); err != nil { // warm-up (§6.2)
			return nil, err
		}
		tm, err := s.run()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Case: s.num, Dataset: dSN.Name, Timings: tm})
	}

	engRB, dRB, err := ds.engine("Rabobank")
	if err != nil {
		return nil, err
	}
	cpRB := paramsFor(dRB)
	if _, _, err := engRB.Case6(6); err != nil { // warm-up
		return nil, err
	}
	if _, tm, err := engRB.Case6(6); err == nil {
		rows = append(rows, Fig8Row{Case: 6, Dataset: dRB.Name, Timings: tm})
	} else {
		return nil, err
	}
	if _, tm, err := engRB.Case7(cpRB.accountID, 3); err == nil {
		rows = append(rows, Fig8Row{Case: 7, Dataset: dRB.Name, Timings: tm})
	} else {
		return nil, err
	}

	engFB, dFB, err := ds.engine("LDBC-FinBench-SF10")
	if err != nil {
		return nil, err
	}
	cpFB := paramsFor(dFB)
	fin := []struct {
		num int
		run func() (engine.Timings, error)
	}{
		{8, func() (engine.Timings, error) { _, tm, err := engFB.Case8(cpFB.accountID, 3); return tm, err }},
		{9, func() (engine.Timings, error) { _, tm, err := engFB.Case9(cpFB.personID, 3); return tm, err }},
		{10, func() (engine.Timings, error) { _, tm, err := engFB.Case10(cpFB.pairA, cpFB.pairB); return tm, err }},
		{11, func() (engine.Timings, error) { _, tm, err := engFB.Case11(cpFB.accountID); return tm, err }},
		{12, func() (engine.Timings, error) { _, tm, err := engFB.Case12(cpFB.loanID, 3); return tm, err }},
	}
	for _, s := range fin {
		if _, err := s.run(); err != nil { // warm-up
			return nil, err
		}
		tm, err := s.run()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Case: s.num, Dataset: dFB.Name, Timings: tm})
	}
	return rows, nil
}

// PrintFig8 renders Figure 8's stacked percentages.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	header(w, "Figure 8 — per-stage time breakdown (% of total)")
	fmt.Fprintf(w, "%-6s %-20s %8s %8s %12s %10s %10s %8s %12s\n",
		"Case", "Dataset", "Scan", "Expand", "UpdateVisit", "Intersect", "Aggregate", "Other", "Total")
	for _, r := range rows {
		tm := r.Timings
		pct := func(x float64) string {
			if tm.Total <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*x/float64(tm.Total))
		}
		fmt.Fprintf(w, "C%-5d %-20s %8s %8s %12s %10s %10s %8s %12s\n",
			r.Case, r.Dataset,
			pct(float64(tm.Scan)), pct(float64(tm.Expand)), pct(float64(tm.UpdateVisit)),
			pct(float64(tm.Intersect)), pct(float64(tm.Aggregate)), pct(float64(tm.Other())),
			fmtDur(tm.Total))
	}
}
