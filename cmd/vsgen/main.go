// Command vsgen generates a synthetic stand-in for one of the paper's
// Table-1 datasets and stores it in VertexSurge's columnar on-disk format.
//
// Usage:
//
//	vsgen -dataset LastFM -scale 1.0 -out ./data/lastfm
//	vsgen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsgen: ")
	var (
		dataset   = flag.String("dataset", "LastFM", "Table-1 dataset name to generate")
		scale     = flag.Float64("scale", 1.0, "scale factor relative to the paper's sizes")
		out       = flag.String("out", "", "output directory (required)")
		list      = flag.Bool("list", false, "list available datasets and exit")
		importEL  = flag.String("import", "", "import a real edge-list file (SNAP format) instead of generating")
		edgeLabel = flag.String("edge-label", "knows", "edge label for -import")
		seed      = flag.Int64("seed", 1, "annotation seed for -import")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-20s %12s %14s\n", "Dataset", "paper |V|", "paper |E|")
		for _, name := range datagen.Table1Names() {
			v, e, _ := datagen.Table1Size(name)
			fmt.Printf("%-20s %12d %14d\n", name, v, e)
		}
		return
	}
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	var g *graph.Graph
	name := *dataset
	if *importEL != "" {
		// Real-dataset path: the paper downloads SNAP/WebGraph edge
		// lists and annotates them with random properties (§6.1);
		// -import does the same for a local file.
		f, err := os.Open(*importEL)
		if err != nil {
			log.Fatal(err)
		}
		g, err = datagen.ImportEdgeList(f, datagen.ImportConfig{
			EdgeLabel: *edgeLabel, Seed: *seed, CommunityFraction: 0.25,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		name = *importEL
	} else {
		ds, err := datagen.Generate(*dataset, *scale)
		if err != nil {
			log.Fatal(err)
		}
		g = ds.Graph
	}
	if err := storage.Write(*out, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: |V|=%d |E|=%d, %d vertex labels, %d edge labels -> %s\n",
		name, g.NumVertices(), g.NumEdges(),
		len(g.VertexLabels()), len(g.EdgeLabels()), *out)
}
