package cypher

import (
	"strings"
	"testing"
)

// FuzzCypherParse asserts the front end never panics: arbitrary input must
// either parse into a query or fail with an error. The lexer and
// recursive-descent parser sit on the server's request path, so a panic
// here is a remotely triggerable crash.
func FuzzCypherParse(f *testing.F) {
	seeds := []string{
		// Valid paper-benchmark shapes (TCR/fraud workloads).
		`MATCH (p:SIGA)-[:knows*..3]-(q:SIGA) RETURN COUNT(DISTINCT p,q);`,
		`MATCH (a:Person:SIGA)-[:knows*1..2]-(b:Person:SIGB) MATCH (b)-[:knows*1..2]-(c:Person:SIGC) MATCH (a)-[:knows*1..2]-(c) RETURN COUNT(DISTINCT a,b,c);`,
		`UNWIND $person_ids AS pid MATCH (p:Person{id:pid})<-[:knows*2..3]-(q:Person) RETURN pid,COUNT(DISTINCT q);`,
		`MATCH (a:Account{id:$id1}), (b:Account{id:$id2}), p=shortestPath((a)-[:transfer*1..]->(b)) RETURN length(p);`,
		`MATCH (loan:Loan{id:$id})-[:deposit]->(src:Account)-[p:transfer|withdraw*1..3]->(other:Account) RETURN DISTINCT other.id, length(p);`,
		`MATCH (a)-[:t*1..6]->(b) WHERE a.balance > 100.5 AND NOT b:RISKA RETURN b ORDER BY b.id DESC LIMIT 10;`,
		// Degenerate and hostile shapes.
		"",
		";",
		"MATCH",
		"MATCH (",
		"MATCH (a)-[:x*..]-(b RETURN a;",
		"RETURN $;",
		`MATCH (a{id:"unterminated`,
		"MATCH (a)-[:x*9999999999999999999..1]-(b) RETURN a;",
		"MATCH (a)--(b) RETURN " + strings.Repeat("(", 1000),
		"\x00\xff\xfe",
		"MATCH (p:Olé)-[:connaît*1..2]-(q) RETURN q;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned nil query and nil error", src)
		}
	})
}
