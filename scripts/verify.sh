#!/usr/bin/env bash
# verify.sh — the race-clean CI gate. Runs the full static-analysis and
# test battery; every PR must pass this script.
#
# Usage:
#   scripts/verify.sh            # full gate (build, vet, gofmt, vslint, tests, -race, fuzz, smoke)
#   FUZZTIME=30s scripts/verify.sh   # longer fuzz smoke
#   SKIP_FUZZ=1 scripts/verify.sh    # skip the fuzz smoke (e.g. constrained machines)
#   SKIP_SMOKE=1 scripts/verify.sh   # skip the vsserve end-to-end smoke
#   SKIP_BENCH=1 scripts/verify.sh   # skip the bench perf-regression gate
#   SKIP_COMPILER_LINT=1 scripts/verify.sh  # skip the vslint -compiler gate
#   BENCH_TOLERANCE=400 scripts/verify.sh  # perf-gate slack in percent
#   BENCH_OUT=out scripts/verify.sh  # keep BENCH_*.json / vslint records (for CI artifacts)
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

step() { printf '\n==> %s\n' "$*"; }

step "go build ./..."
go build ./...

step "gofmt check"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "vslint -interproc -nolint-audit (hot-path, concurrency, and whole-program invariants)"
# ./... matches every package, including internal/vslint and cmd/vslint —
# the linter self-lints. -nolint-audit additionally fails the gate on any
# //vs:nolint directive that no longer suppresses a finding, so stale
# justifications cannot accumulate. With BENCH_OUT set, the whole-program
# call graph and a SARIF log land next to the findings JSON for the CI
# artifact upload / code-scanning import.
if [ -n "${BENCH_OUT:-}" ]; then
    mkdir -p "$BENCH_OUT"
    go run ./cmd/vslint -interproc -nolint-audit -callgraph-dot "$BENCH_OUT/callgraph.dot" ./...
    go run ./cmd/vslint -interproc -nolint-audit -format sarif ./... > "$BENCH_OUT/vslint.sarif"
else
    go run ./cmd/vslint -interproc -nolint-audit ./...
fi

if [ -z "${SKIP_COMPILER_LINT:-}" ]; then
    step "vslint -compiler (escape/bounds-check gate vs bench/vslint_baseline.json)"
    # The compiler gate rebuilds with -gcflags diagnostics (go build -a),
    # so it is the slowest lint step; SKIP_COMPILER_LINT=1 disables it.
    # The findings JSON lands next to the BENCH_*.json records when
    # BENCH_OUT is set, so CI uploads it as an artifact.
    lintout="${BENCH_OUT:-}"
    if [ -n "$lintout" ]; then
        mkdir -p "$lintout"
        go run ./cmd/vslint -compiler -json ./... > "$lintout/vslint_findings.json"
    else
        go run ./cmd/vslint -compiler ./...
    fi
fi

step "go test ./..."
go test ./...

step "go test -race ./..."
go test -race ./...

if [ -z "${SKIP_FUZZ:-}" ]; then
    step "fuzz smoke (${FUZZTIME} each)"
    go test -run='^$' -fuzz=FuzzCypherParse -fuzztime="$FUZZTIME" ./internal/cypher
    go test -run='^$' -fuzz=FuzzHilbertRoundTrip -fuzztime="$FUZZTIME" ./internal/hilbert
    go test -run='^$' -fuzz=FuzzWireDecode -fuzztime="$FUZZTIME" ./internal/wire
fi

if [ -z "${SKIP_SMOKE:-}" ]; then
    step "vsserve smoke (generate, serve, query, /debug/queries, scrape /metrics)"
    smokedir="$(mktemp -d)"
    serverpid=""
    cleanup() {
        [ -n "$serverpid" ] && kill "$serverpid" 2>/dev/null || true
        rm -rf "$smokedir"
    }
    trap cleanup EXIT

    go run ./cmd/vsgen -dataset LastFM -scale 0.05 -out "$smokedir/graph" >/dev/null
    go build -o "$smokedir/vsserve" ./cmd/vsserve
    "$smokedir/vsserve" -data "$smokedir/graph" -addr 127.0.0.1:0 -access-log=false \
        -wire-addr 127.0.0.1:0 -fetch-batch 16 \
        > "$smokedir/stdout" 2> "$smokedir/stderr" &
    serverpid=$!

    # vsserve prints "serving <dir> (...) on <addr>" once the listener is
    # bound; scrape the real port from that line.
    hostport=""
    for _ in $(seq 1 50); do
        hostport="$(sed -n 's/^serving .* on //p' "$smokedir/stdout")"
        [ -n "$hostport" ] && break
        kill -0 "$serverpid" 2>/dev/null || { cat "$smokedir/stderr" >&2; echo "vsserve exited early" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$hostport" ] || { echo "vsserve never announced its address" >&2; exit 1; }

    curl -fsS "http://$hostport/healthz" | grep -q ok
    curl -fsS "http://$hostport/query" \
        -d '{"query":"MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q)","profile":true}' \
        | grep -q '"profile"'
    metrics="$(curl -fsS "http://$hostport/metrics")"
    echo "$metrics" | grep -q '^vs_queries_total 1$' \
        || { echo "vs_queries_total did not reach 1:" >&2; echo "$metrics" | grep vs_queries >&2; exit 1; }
    echo "$metrics" | grep -q 'vs_query_stage_seconds_count{stage="total"} 1' \
        || { echo "stage histogram missing:" >&2; echo "$metrics" | grep stage >&2; exit 1; }

    # The completed query must show up in the introspection history, and
    # the runtime-metrics bridge must be live on /metrics.
    curl -fsS "http://$hostport/debug/queries" \
        | grep -q '"status":"ok"' \
        || { echo "/debug/queries history is missing the completed query" >&2; exit 1; }
    echo "$metrics" | grep -q '^go_goroutines ' \
        || { echo "runtime-metrics bridge missing go_goroutines on /metrics" >&2; exit 1; }
    echo "$metrics" | grep -q '^vs_build_info{' \
        || { echo "vs_build_info gauge missing on /metrics" >&2; exit 1; }

    # The time-series ring must be sampling: vsserve defaults to a 1s
    # interval, so within a few seconds /debug/timeseries accumulates ≥ 2
    # samples carrying the queries-total series.
    samples=0
    for _ in $(seq 1 40); do
        samples="$(curl -fsS "http://$hostport/debug/timeseries" \
            | sed -n 's/.*"samples":\([0-9]*\).*/\1/p')"
        [ -n "$samples" ] && [ "$samples" -ge 2 ] && break
        sleep 0.25
    done
    [ -n "$samples" ] && [ "$samples" -ge 2 ] \
        || { echo "/debug/timeseries never reached 2 samples (got '$samples')" >&2; exit 1; }
    curl -fsS "http://$hostport/debug/timeseries" | grep -q '"vs_queries_total"' \
        || { echo "/debug/timeseries window is missing vs_queries_total" >&2; exit 1; }

    # The dashboard page and its SSE stream must be live: the stream's
    # first frame (heartbeat comment + dash event) arrives immediately.
    # Capture before grepping: grep -q closes the pipe at first match,
    # which under pipefail turns curl's EPIPE into a spurious failure.
    dashpage="$(curl -fsS "http://$hostport/debug/dash")"
    printf '%s' "$dashpage" | grep -q 'vsserve' \
        || { echo "/debug/dash page missing" >&2; exit 1; }
    # curl is cut off by --max-time / the closed pipe by design; only the
    # grep verdict matters.
    frames="$( (curl -fsS --max-time 5 -N "http://$hostport/debug/dash/stream" 2>/dev/null || true) | head -c 4096 )"
    printf '%s' "$frames" | grep -q 'event: dash' \
        || { echo "/debug/dash/stream produced no dash event" >&2; exit 1; }

    # Completed queries must land in the per-query cost metric family with
    # real attributed bytes.
    costb="$(curl -fsS "http://$hostport/metrics" | sed -n 's/^vs_query_cost_bytes{resource="matrix"} //p')"
    [ -n "$costb" ] && [ "$costb" -ge 1 ] \
        || { echo "vs_query_cost_bytes{resource=\"matrix\"} not accumulating (got '$costb')" >&2; exit 1; }

    # Repeating the query must hit the engine-level matrix cache (vsserve
    # enables it by default).
    curl -fsS "http://$hostport/query" \
        -d '{"query":"MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q)"}' >/dev/null
    hits="$(curl -fsS "http://$hostport/metrics" | sed -n 's/^vs_matrix_cache_hits_total //p')"
    [ -n "$hits" ] && [ "$hits" -ge 1 ] \
        || { echo "repeated query produced no matrix-cache hits (vs_matrix_cache_hits_total=$hits)" >&2; exit 1; }

    step "NDJSON streaming smoke (rows exceed one fetch batch, in-flight drains)"
    # A streamable MATCH with "stream":true returns NDJSON: a columns header,
    # one JSON array per row, and a summary trailer. The server was started
    # with -fetch-batch 16, so any multi-batch result proves rows crossed
    # several cursor fetches rather than one materialized response.
    streamq='MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN p, q'
    curl -fsS -N "http://$hostport/query" \
        -d "{\"query\":\"$streamq\",\"stream\":true}" > "$smokedir/ndjson"
    head -1 "$smokedir/ndjson" | grep -q '"columns":\["p","q"\]' \
        || { echo "NDJSON header missing columns:" >&2; head -1 "$smokedir/ndjson" >&2; exit 1; }
    head -1 "$smokedir/ndjson" | grep -q '"streaming":true' \
        || { echo "NDJSON header did not mark the query streaming" >&2; exit 1; }
    streamrows="$(( $(wc -l < "$smokedir/ndjson") - 2 ))"
    [ "$streamrows" -gt 16 ] \
        || { echo "streamed $streamrows rows; need more than one 16-row fetch batch" >&2; exit 1; }
    tail -1 "$smokedir/ndjson" | grep -q "\"rows\":$streamrows" \
        || { echo "NDJSON trailer row count disagrees with the stream:" >&2; tail -1 "$smokedir/ndjson" >&2; exit 1; }
    # The streamed query must drain from the live registry once the cursor
    # is exhausted — in-flight back to 0, total incremented.
    inflight=""
    for _ in $(seq 1 40); do
        inflight="$(curl -fsS "http://$hostport/metrics" | sed -n 's/^vs_queries_in_flight //p')"
        [ "$inflight" = "0" ] && break
        sleep 0.1
    done
    [ "$inflight" = "0" ] \
        || { echo "vs_queries_in_flight stuck at '$inflight' after stream drained" >&2; exit 1; }

    step "wire protocol smoke (vsquery -wire rows match the HTTP/JSON path)"
    wireaddr="$(sed -n 's/^wire protocol on //p' "$smokedir/stdout")"
    [ -n "$wireaddr" ] || { echo "vsserve never announced the wire listener" >&2; exit 1; }
    go build -o "$smokedir/vsquery" ./cmd/vsquery
    "$smokedir/vsquery" -wire "$wireaddr" -json -query "$streamq" \
        | sort > "$smokedir/wire_rows"
    curl -fsS "http://$hostport/query" -d "{\"query\":\"$streamq\"}" \
        | python3 -c 'import json,sys
for row in json.load(sys.stdin)["rows"]:
    print(json.dumps(row, separators=(",", ":")))' \
        | sort > "$smokedir/http_rows"
    [ -s "$smokedir/wire_rows" ] || { echo "vsquery -wire returned no rows" >&2; exit 1; }
    diff -u "$smokedir/http_rows" "$smokedir/wire_rows" \
        || { echo "wire and HTTP transports disagree on $streamq" >&2; exit 1; }

    step "vsserve -query-timeout smoke (expired deadline returns 504)"
    "$smokedir/vsserve" -data "$smokedir/graph" -addr 127.0.0.1:0 -access-log=false \
        -query-timeout 1ns > "$smokedir/stdout2" 2> "$smokedir/stderr2" &
    timeoutpid=$!
    cleanup2() {
        kill "$timeoutpid" 2>/dev/null || true
        cleanup
    }
    trap cleanup2 EXIT
    hostport2=""
    for _ in $(seq 1 50); do
        hostport2="$(sed -n 's/^serving .* on //p' "$smokedir/stdout2")"
        [ -n "$hostport2" ] && break
        kill -0 "$timeoutpid" 2>/dev/null || { cat "$smokedir/stderr2" >&2; echo "vsserve (timeout) exited early" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$hostport2" ] || { echo "vsserve (timeout) never announced its address" >&2; exit 1; }
    status="$(curl -s -o /dev/null -w '%{http_code}' "http://$hostport2/query" \
        -d '{"query":"MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q)"}')"
    [ "$status" = "504" ] \
        || { echo "-query-timeout 1ns returned HTTP $status, want 504" >&2; exit 1; }
fi

if [ -z "${SKIP_BENCH:-}" ]; then
    step "bench perf-regression gate (fig9 @ 0.02 vs bench/baseline.json)"
    # The gate catches order-of-magnitude regressions (an accidental
    # strawman fallback, a lost optimization), not percent-level noise:
    # CI machines differ from the machine that recorded the baseline, so
    # the default tolerance is wide. Tighten BENCH_TOLERANCE when the
    # baseline was recorded on the same hardware.
    # No trap here: the smoke step above owns the EXIT trap. A mktemp dir
    # only leaks if the gate itself fails.
    benchout="${BENCH_OUT:-}"
    keep_bench=1
    if [ -z "$benchout" ]; then
        benchout="$(mktemp -d)"
        keep_bench=""
    fi
    go run ./cmd/vsbench -exp fig9 -scale 0.02 -json "$benchout"
    go run ./scripts/benchdiff.go -tolerance "${BENCH_TOLERANCE:-400}" \
        "$benchout/BENCH_fig9_0.02.json" bench/baseline.json

    step "bench cache gate (repeated-query cache hits vs bench/baseline_cache.json)"
    # The cache experiment fails outright if warm runs stop hitting the
    # engine cache; the benchdiff compares warm (cache-hit) latencies.
    go run ./cmd/vsbench -exp cache -scale 0.02 -json "$benchout"
    go run ./scripts/benchdiff.go -tolerance "${BENCH_TOLERANCE:-400}" \
        "$benchout/BENCH_cache_0.02.json" bench/baseline_cache.json
    [ -n "$keep_bench" ] || rm -rf "$benchout"
fi

step "verify OK"
