package vslint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
)

// ResourceBalance generalizes span-leak to table-declared acquire/release
// pairs: memory grants from exec.Accountant and telemetry gauge
// increments. A reservation that is not released on some path is a
// permanent leak of query-memory budget; an unbalanced gauge corrupts the
// in-flight counters the /metrics endpoint exports.
//
// Pairing is intraprocedural with an ownership-transfer convention: only
// resources that are both acquired AND released in the same function are
// checked (a reserve helper whose caller releases is legal), and a path
// that returns the acquire's own error is a failed acquire, not a leak.
var ResourceBalance = &Analyzer{
	Name: "resource-balance",
	Doc:  "table-declared acquire/release pairs (Accountant.Reserve/Release, Gauge.Add) must balance on all paths",
	Run:  runResourceBalance,
}

// resourceRule declares one acquire/release pair by receiver type name.
// When signed is set, calls to that method classify by the sign of their
// constant argument: positive acquires, negative releases.
type resourceRule struct {
	recvType string
	acquire  map[string]bool
	release  map[string]bool
	signed   string
}

var resourceTable = []resourceRule{
	{
		recvType: "Accountant",
		acquire:  map[string]bool{"Reserve": true, "TryReserve": true},
		release:  map[string]bool{"Release": true},
	},
	{
		recvType: "Gauge",
		signed:   "Add",
	},
}

func runResourceBalance(p *Pass) {
	spec := &pairSpec{
		classify:     classifyResource,
		bothRequired: true,
		leakMsg: func(s *acqSite) string {
			return fmt.Sprintf("%s is not released on every path (pair it with a release or defer one)", s.desc)
		},
	}
	forEachFuncDecl(p, func(fd *ast.FuncDecl) { runPairing(p, fd, spec) })
}

// ResourceBalanceInterproc is the interprocedural upgrade of
// ResourceBalance (same analyzer name: -interproc swaps it in). On top of
// the direct table calls, every static call site is widened by the
// callee's summarized net effects: a helper that reserves into its
// parameter counts as an acquire of the caller-side expression, and a
// deferred-release helper counts as a release — so Reserve-in-caller /
// Release-in-callee pairs verify instead of being skipped by the
// both-halves-in-one-function rule.
var ResourceBalanceInterproc = &ModuleAnalyzer{
	Name: ResourceBalance.Name,
	Doc:  "acquire/release pairs must balance on all paths, seeing through helper calls via function summaries",
	Run:  runResourceBalanceInterproc,
}

func runResourceBalanceInterproc(mp *ModulePass) {
	for _, n := range mp.Graph.Nodes {
		if n.Body() == nil {
			continue
		}
		p := mp.passFor(n.Pkg)
		byPos := posEdgeIndex(n)
		spec := &pairSpec{
			bothRequired: true,
			leakMsg: func(s *acqSite) string {
				return fmt.Sprintf("%s is not released on every path (pair it with a release or defer one)", s.desc)
			},
			classify: func(p *Pass, node ast.Node, deferred bool, emit func(event)) {
				direct := map[token.Pos]bool{}
				classifyResource(p, node, deferred, func(ev event) {
					direct[ev.pos] = true
					emit(ev)
				})
				classifyCalleeEffects(mp, p, byPos, direct, node, deferred, emit)
			},
		}
		runPairingBody(p, n.Body(), spec)
	}
}

// classifyCalleeEffects emits acquire/release events for the summarized
// net effects of statically-resolved callees, mapped onto caller-side
// expressions. Positions already classified as direct table calls are
// skipped so a call is never counted twice.
func classifyCalleeEffects(mp *ModulePass, p *Pass, byPos map[token.Pos][]*CallEdge, direct map[token.Pos]bool, n ast.Node, deferred bool, emit func(event)) {
	inspectNode(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok || direct[call.Pos()] {
			return true
		}
		for _, e := range byPos[call.Pos()] {
			if e.Kind != EdgeStatic || e.Go {
				continue
			}
			for _, eff := range mp.Sums.Of(e.Callee).Effects {
				arg := effectArgExpr(call, eff.Param)
				if arg == nil {
					continue
				}
				base := exprKey(arg)
				if base == "" {
					continue
				}
				key := eff.Rule + ":" + base + eff.Path
				if eff.Acquire {
					if deferred {
						continue // a deferred acquire helper grants at exit; out of scope
					}
					emit(event{
						acquire: true,
						pos:     call.Pos(),
						call:    call,
						site: &acqSite{
							key:  key,
							desc: fmt.Sprintf("%s acquisition %s%s via %s", eff.Rule, base, eff.Path, e.Callee.Name),
						},
					})
				} else {
					// A callee that defers its release still releases by
					// the time the call returns: a plain release here.
					emit(event{acquire: false, pos: call.Pos(), key: key})
				}
			}
		}
		return true
	})
}

func classifyResource(p *Pass, n ast.Node, deferred bool, emit func(event)) {
	inspectNode(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := namedTypeName(p.typeOf(sel.X))
		base := exprKey(sel.X)
		if base == "" {
			return true
		}
		method := sel.Sel.Name
		for _, r := range resourceTable {
			if r.recvType != recv {
				continue
			}
			acquire, release := r.acquire[method], r.release[method]
			if r.signed == method && len(call.Args) > 0 {
				if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value != nil &&
					(tv.Value.Kind() == constant.Int || tv.Value.Kind() == constant.Float) {
					switch constant.Sign(tv.Value) {
					case 1:
						acquire = true
					case -1:
						release = true
					}
				}
			}
			key := r.recvType + ":" + base
			switch {
			case acquire && !deferred:
				emit(event{
					acquire: true,
					pos:     call.Pos(),
					call:    call,
					site: &acqSite{
						key:  key,
						desc: fmt.Sprintf("%s acquisition %s.%s", r.recvType, base, method),
					},
				})
			case release:
				emit(event{acquire: false, pos: call.Pos(), key: key})
			}
		}
		return true
	})
}
