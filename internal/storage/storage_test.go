package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bitmatrix"
	"repro/internal/datagen"
	"repro/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, lay, err := datagen.FinancialGraph(datagen.FinConfig{
		NumPersons: 20, NumAccounts: 80, NumLoans: 10, NumMediums: 15,
		NumTransfers: 300, NumWithdraws: 60, Seed: 77, BlockedFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = lay
	return g
}

func TestWriteOpenRoundTrip(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	if !reflect.DeepEqual(g2.EdgeLabels(), g.EdgeLabels()) {
		t.Fatalf("edge labels = %v, want %v", g2.EdgeLabels(), g.EdgeLabels())
	}
	for _, label := range g.EdgeLabels() {
		e1, e2 := g.Edges(label), g2.Edges(label)
		if e1.Len() != e2.Len() {
			t.Fatalf("%s edge count differs", label)
		}
		for i := 0; i < e1.Len(); i++ {
			s1, d1 := e1.Edge(i)
			s2, d2 := e2.Edge(i)
			if s1 != s2 || d1 != d2 {
				t.Fatalf("%s edge %d differs", label, i)
			}
		}
	}
	for _, label := range g.VertexLabels() {
		if !g2.Label(label).Equal(g.Label(label)) {
			t.Fatalf("label %s bitmap differs", label)
		}
	}
	for _, name := range g.PropNames() {
		c1, c2 := g.Prop(name), g2.Prop(name)
		if c1.Kind() != c2.Kind() || c1.Len() != c2.Len() {
			t.Fatalf("property %s shape differs", name)
		}
		for i := 0; i < c1.Len(); i++ {
			if c1.Value(i) != c2.Value(i) {
				t.Fatalf("property %s row %d: %v vs %v", name, i, c1.Value(i), c2.Value(i))
			}
		}
	}
}

func TestStringColumnRoundTrip(t *testing.T) {
	b := graph.NewBuilder(3)
	b.SetProp("name", graph.StringColumn{"", "héllo", "with\x00byte"})
	b.AddEdge("e", 0, 1)
	g := b.MustBuild()
	dir := t.TempDir()
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	col := g2.Prop("name").(graph.StringColumn)
	if !reflect.DeepEqual(col, graph.StringColumn{"", "héllo", "with\x00byte"}) {
		t.Fatalf("strings = %q", col)
	}
}

func TestReadMetaValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadMeta(dir); err == nil {
		t.Error("missing metadata accepted")
	}
	os.WriteFile(filepath.Join(dir, "metadata.json"), []byte("{not json"), 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Error("corrupt metadata accepted")
	}
	os.WriteFile(filepath.Join(dir, "metadata.json"), []byte(`{"version":99,"num_vertices":1}`), 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Error("wrong version accepted")
	}
	os.WriteFile(filepath.Join(dir, "metadata.json"), []byte(`{"version":1,"num_vertices":-1}`), 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Error("negative vertex count accepted")
	}
}

func TestOpenDetectsTruncatedEdgeFile(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "edges", "transfer.coo")
	if err := os.Truncate(path, 12); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated edge file accepted")
	}
}

func TestOpenDetectsTruncatedColumn(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, "props", "id.col"), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("truncated column accepted")
	}
}

func TestSpillRoundTrip(t *testing.T) {
	sm, err := NewSpillManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()

	rng := rand.New(rand.NewSource(13))
	var handles []Handle
	var originals []*bitmatrix.Matrix
	for i := 0; i < 5; i++ {
		m := bitmatrix.New(600+i*100, 40)
		for j := 0; j < 500; j++ {
			m.Set(rng.Intn(m.Rows()), rng.Intn(m.Cols()))
		}
		h, err := sm.Spill(i%2, m)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		originals = append(originals, m)
	}
	if sm.SpilledBytes() == 0 {
		t.Fatal("no bytes recorded")
	}
	for i, h := range handles {
		m, err := sm.Load(h)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(originals[i]) {
			t.Fatalf("matrix %d round-trip mismatch", i)
		}
	}
	if _, err := sm.Load(Handle(999)); err == nil {
		t.Fatal("unknown handle accepted")
	}
}

func TestSpillConcurrentWorkers(t *testing.T) {
	sm, err := NewSpillManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()

	const workers = 4
	const perWorker = 8
	type result struct {
		h Handle
		m *bitmatrix.Matrix
	}
	results := make(chan result, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				m := bitmatrix.New(512, 30)
				for j := 0; j < 100; j++ {
					m.Set(rng.Intn(512), rng.Intn(30))
				}
				h, err := sm.Spill(w, m)
				if err != nil {
					t.Error(err)
					return
				}
				results <- result{h, m}
			}
		}(w)
	}
	wg.Wait()
	close(results)
	for r := range results {
		m, err := sm.Load(r.h)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(r.m) {
			t.Fatal("concurrent spill corrupted a matrix")
		}
	}
}

func TestSpillCloseRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	sm, err := NewSpillManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := bitmatrix.New(10, 10)
	m.Set(1, 1)
	if _, err := sm.Spill(0, m); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill files remain: %v", entries)
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	dir := t.TempDir()
	if err := Write(dir, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 0 || g2.NumEdges() != 0 {
		t.Fatal("empty graph round trip failed")
	}
}

// Property: Open on arbitrarily corrupted bytes errors — never panics,
// never returns a half-read graph silently.
func TestQuickOpenSurvivesCorruption(t *testing.T) {
	g := testGraph(t)
	base := t.TempDir()
	if err := Write(base, g); err != nil {
		t.Fatal(err)
	}
	var files []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		// Copy the valid store, then corrupt one file.
		for _, src := range files {
			rel, _ := filepath.Rel(base, src)
			dst := filepath.Join(dir, rel)
			os.MkdirAll(filepath.Dir(dst), 0o755)
			raw, err := os.ReadFile(src)
			if err != nil {
				return false
			}
			os.WriteFile(dst, raw, 0o644)
		}
		victim := files[rng.Intn(len(files))]
		rel, _ := filepath.Rel(base, victim)
		raw, _ := os.ReadFile(filepath.Join(dir, rel))
		switch rng.Intn(3) {
		case 0: // truncate
			if len(raw) > 0 {
				raw = raw[:rng.Intn(len(raw))]
			}
		case 1: // flip bytes
			for i := 0; i < 8 && len(raw) > 0; i++ {
				raw[rng.Intn(len(raw))] ^= byte(1 + rng.Intn(255))
			}
		case 2: // append garbage
			raw = append(raw, make([]byte, 1+rng.Intn(64))...)
		}
		os.WriteFile(filepath.Join(dir, rel), raw, 0o644)

		defer func() {
			if r := recover(); r != nil {
				t.Errorf("seed %d: Open panicked on corrupted %s: %v", seed, rel, r)
			}
		}()
		// Either it errors, or the corruption was semantically harmless
		// (e.g. flipped vertex id still in range) — both are acceptable;
		// panics and silent short-reads are not.
		g2, err := Open(dir)
		if err == nil && g2.NumVertices() != g.NumVertices() {
			t.Errorf("seed %d: silent corruption accepted for %s", seed, rel)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
