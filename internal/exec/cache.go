package exec

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/telemetry"
	"repro/internal/vexpand"
)

// CacheKey identifies one expansion across queries: the graph it ran on
// (by epoch, so a reloaded graph can never serve stale matrices), the
// canonical determiner, and the source set (by length plus FNV-64a hash —
// the engine's source lists are deterministic scans, so hash equality on
// equal-length lists is collision-checked only by the hash).
type CacheKey struct {
	Epoch   uint64
	Det     string
	SrcLen  int
	SrcHash uint64
}

// DeterminerKey renders d canonically for cache keying: every field spelled
// out (Determiner.String omits EdgePropEq; fmt prints maps in sorted key
// order).
func DeterminerKey(d pattern.Determiner) string {
	return fmt.Sprintf("%d|%d|%d|%d|%v|%v", d.KMin, d.KMax, d.Dir, d.Type, d.EdgeLabels, d.EdgePropEq)
}

// NewCacheKey builds the cache key for expanding sources under d on a graph
// with the given epoch.
func NewCacheKey(epoch uint64, d pattern.Determiner, sources []graph.VertexID) CacheKey {
	h := fnv.New64a()
	var buf [4]byte
	for _, s := range sources {
		buf[0] = byte(s)
		buf[1] = byte(s >> 8)
		buf[2] = byte(s >> 16)
		buf[3] = byte(s >> 24)
		_, _ = h.Write(buf[:])
	}
	return CacheKey{Epoch: epoch, Det: DeterminerKey(d), SrcLen: len(sources), SrcHash: h.Sum64()}
}

// MatrixCache is the engine-level byte-budgeted LRU of VExpand results.
// Cached results are shared across queries and must never be mutated —
// the engine's join assembly clones before AND-ing (copy-on-AND).
//
// Entry sizes are the result's reachability-matrix bytes; residency is
// charged to the shared Accountant (when set) so cached matrices and live
// intermediates compete for one budget.
type MatrixCache struct {
	mu      sync.Mutex
	limit   int64
	bytes   int64
	acct    *Accountant
	entries map[CacheKey]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
}

type cacheEntry struct {
	key  CacheKey
	res  *vexpand.Result
	size int64
}

// NewMatrixCache returns a cache bounded to limit bytes (> 0), charging
// residency to acct when non-nil.
func NewMatrixCache(limit int64, acct *Accountant) *MatrixCache {
	return &MatrixCache{
		limit:   limit,
		acct:    acct,
		entries: make(map[CacheKey]*list.Element),
		lru:     list.New(),
	}
}

// Get returns the cached result for k, marking it most recently used.
// Safe on a nil cache.
//
//vs:hotpath
func (c *MatrixCache) Get(k CacheKey) (*vexpand.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	telemetry.MatrixCacheHits.Inc()
	return el.Value.(*cacheEntry).res, true
}

// Put inserts r under k, evicting least-recently-used entries until the
// byte limit holds. Results larger than the limit, duplicate keys, and
// results whose residency the accountant refuses are skipped (the caller
// keeps its result either way). Safe on a nil cache.
func (c *MatrixCache) Put(k CacheKey, r *vexpand.Result) {
	if c == nil || r == nil || r.Reach == nil {
		return
	}
	size := int64(r.Reach.SizeBytes())
	if size <= 0 || size > c.limit {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return
	}
	for c.bytes+size > c.limit && c.lru.Len() > 0 {
		c.evictOldestLocked()
	}
	// TryReserve, not Reserve: OnPressure re-enters this cache and would
	// deadlock on c.mu. The shared budget being tighter than the cache
	// limit just means residency loses to live queries.
	if !c.acct.TryReserve(size) { //vs:nolint(resource-balance) ownership of the reservation transfers to the cache entry; evictOldestLocked releases it when the entry leaves
		return
	}
	el := c.lru.PushFront(&cacheEntry{key: k, res: r, size: size})
	c.entries[k] = el
	c.bytes += size
	telemetry.MatrixCacheBytes.Set(c.bytes)
}

// EvictBytes evicts least-recently-used entries until at least n bytes were
// freed or the cache is empty — the Accountant.OnPressure hook. Safe on a
// nil cache.
func (c *MatrixCache) EvictBytes(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	freed := int64(0)
	for freed < n && c.lru.Len() > 0 {
		freed += c.evictOldestLocked()
	}
}

func (c *MatrixCache) evictOldestLocked() int64 {
	el := c.lru.Back()
	if el == nil {
		return 0
	}
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
	c.acct.Release(e.size)
	telemetry.MatrixCacheEvictions.Inc()
	telemetry.MatrixCacheBytes.Set(c.bytes)
	return e.size
}

// Bytes returns the current resident size. Safe on a nil cache.
func (c *MatrixCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of resident entries. Safe on a nil cache.
func (c *MatrixCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
