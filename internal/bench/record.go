package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout; bump on incompatible
// changes so benchdiff can refuse cross-schema comparisons.
const SchemaVersion = 1

// HostInfo is the machine fingerprint stamped into every record: numbers
// from two different hosts are not comparable, and the fingerprint makes
// that visible instead of silent.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CPUModel is /proc/cpuinfo's "model name" (empty off Linux).
	CPUModel string `json:"cpu_model,omitempty"`
	// GitSHA is the commit the binary was built from: the build info's
	// vcs.revision when stamped, otherwise `git rev-parse`, otherwise
	// "unknown".
	GitSHA string `json:"git_sha"`
}

// CaseResult is one measured case of an experiment.
type CaseResult struct {
	// Name is the stable case key benchdiff joins on, e.g.
	// "fig9/prefetch" or "fig6/c1/LastFM/vertexsurge".
	Name string `json:"name"`
	// MedianNs and P95Ns summarize the case's wall time in nanoseconds.
	// With a single measurement they are equal. -1 marks a case with no
	// timing (size-only rows, timeouts, unsupported systems) — benchdiff
	// skips those.
	MedianNs int64 `json:"median_ns"`
	P95Ns    int64 `json:"p95_ns"`
	// Bytes is the case's memory footprint where the experiment measures
	// one (Table 1 sizes, Table 2 matrix bytes).
	Bytes int64 `json:"bytes,omitempty"`
	// Count is the case's result cardinality where measured.
	Count int64 `json:"count,omitempty"`
	// Tier1 marks the cases the CI regression gate compares: VertexSurge's
	// own kernels and end-to-end cases, not the intentionally-slow
	// baselines (timeout-prone, high variance).
	Tier1 bool `json:"tier1"`
}

// Record is one experiment run: the BENCH_<exp>_<scale>.json payload.
type Record struct {
	Schema     int          `json:"schema"`
	Experiment string       `json:"experiment"`
	Scale      float64      `json:"scale"`
	Timestamp  string       `json:"timestamp"`
	Host       HostInfo     `json:"host"`
	Cases      []CaseResult `json:"cases"`
}

// CollectHost gathers the machine fingerprint.
func CollectHost() HostInfo {
	h := HostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
		GitSHA:     gitSHA(),
	}
	return h
}

func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

func gitSHA() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	// `go run` and `go test` binaries carry no VCS stamp; ask git directly.
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// NewRecord stamps an empty record for one experiment run.
func NewRecord(cfg Config, experiment string) *Record {
	return &Record{
		Schema:     SchemaVersion,
		Experiment: experiment,
		Scale:      cfg.scale(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Host:       CollectHost(),
	}
}

// Add appends a timed case. Timeout and notRun durations record as
// MedianNs = -1 (excluded from diffs) so the case list stays complete.
func (r *Record) Add(name string, d time.Duration, tier1 bool) *CaseResult {
	ns := int64(-1)
	if d > 0 {
		ns = d.Nanoseconds()
	}
	r.Cases = append(r.Cases, CaseResult{Name: name, MedianNs: ns, P95Ns: ns, Tier1: tier1})
	return &r.Cases[len(r.Cases)-1]
}

// Filename is the record's canonical file name, BENCH_<exp>_<scale>.json.
func (r *Record) Filename() string {
	return fmt.Sprintf("BENCH_%s_%g.json", r.Experiment, r.Scale)
}

// Write serializes the record into dir (created if missing) under its
// canonical name and returns the full path.
func (r *Record) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Filename())
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Per-experiment converters: each maps the experiment's row type onto the
// flat case list. VertexSurge's own measurements are tier-1; baseline
// columns (join, gpm) ride along untiered for trajectory plots.

// RecordFig9 records the kernel-ladder times, all tier-1.
func RecordFig9(cfg Config, rows []Fig9Row) *Record {
	r := NewRecord(cfg, "fig9")
	for _, row := range rows {
		r.Add("fig9/"+row.Kernel.String(), row.Time, true)
	}
	return r
}

// RecordFig2b records the community-triangle sweep; the VertexSurge
// column is tier-1.
func RecordFig2b(cfg Config, rows []Fig2bRow) *Record {
	r := NewRecord(cfg, "fig2b")
	for _, row := range rows {
		c := r.Add(fmt.Sprintf("fig2b/k%d/vertexsurge", row.KMax), row.VertexSurge, true)
		c.Count = row.Count
		r.Add(fmt.Sprintf("fig2b/k%d/join", row.KMax), row.Join, false)
		r.Add(fmt.Sprintf("fig2b/k%d/gpm", row.KMax), row.GPM, false)
	}
	return r
}

// RecordFig6 records the twelve-case grid; VertexSurge cells are tier-1.
func RecordFig6(cfg Config, cells []Fig6Cell) *Record {
	r := NewRecord(cfg, "fig6")
	for _, c := range cells {
		base := fmt.Sprintf("fig6/c%d/%s", c.Case, c.Dataset)
		r.Add(base+"/vertexsurge", c.VertexSurge, true)
		r.Add(base+"/join", c.Join, false)
		r.Add(base+"/gpm", c.GPM, false)
	}
	return r
}

// RecordFig7 records the k_max sweeps, all tier-1.
func RecordFig7(cfg Config, rows []Fig7Row) *Record {
	r := NewRecord(cfg, "fig7")
	for _, row := range rows {
		for i, d := range row.Times {
			r.Add(fmt.Sprintf("fig7/c%d/%s/k%d", row.Case, row.Dataset, i+1), d, true)
		}
	}
	return r
}

// RecordFig8 records per-case totals (tier-1) plus the per-stage split.
func RecordFig8(cfg Config, rows []Fig8Row) *Record {
	r := NewRecord(cfg, "fig8")
	for _, row := range rows {
		base := fmt.Sprintf("fig8/c%d/%s", row.Case, row.Dataset)
		tm := row.Timings
		r.Add(base+"/total", tm.Total, true)
		r.Add(base+"/scan", tm.Scan, false)
		r.Add(base+"/expand", tm.Expand, false)
		r.Add(base+"/update_visit", tm.UpdateVisit, false)
		r.Add(base+"/intersect", tm.Intersect, false)
		r.Add(base+"/aggregate", tm.Aggregate, false)
	}
	return r
}

// RecordTable1 records dataset sizes (no timings).
func RecordTable1(cfg Config, rows []Table1Row) *Record {
	r := NewRecord(cfg, "table1")
	for _, row := range rows {
		c := r.Add("table1/"+row.Name, -1, false)
		c.Bytes = row.SizeBytes
		c.Count = int64(row.GenE)
	}
	return r
}

// RecordTable2 records intermediate-result sizes (no timings).
func RecordTable2(cfg Config, rows []Table2Row) *Record {
	r := NewRecord(cfg, "table2")
	for _, row := range rows {
		c := r.Add(fmt.Sprintf("table2/k%d/expand", row.KMax), -1, false)
		c.Bytes = row.MatrixBytes
		c.Count = row.Expand
		j := r.Add(fmt.Sprintf("table2/k%d/join", row.KMax), -1, false)
		j.Bytes = row.FlatBytes
		j.Count = int64(row.Join)
	}
	return r
}

// RecordCache records the repeated-query cache experiment. The warm
// (cache-hit) medians are tier-1: a regression there means repeated
// queries stopped hitting the engine cache. Cold runs ride along
// untiered (they duplicate fig6-style full executions).
func RecordCache(cfg Config, rows []CacheRow) *Record {
	r := NewRecord(cfg, "cache")
	for _, row := range rows {
		cold := r.Add(fmt.Sprintf("cache/%s/cold", row.Name), row.Cold, false)
		cold.Count = row.Count
		warm := r.Add(fmt.Sprintf("cache/%s/warm", row.Name), row.Warm, true)
		warm.Count = row.Hits
	}
	return r
}

// RecordAblations records the design-decision ablations (variance-prone,
// untiered).
func RecordAblations(cfg Config, rows []AblationRow) *Record {
	r := NewRecord(cfg, "ablations")
	for _, row := range rows {
		r.Add(fmt.Sprintf("ablations/%s/%s", row.Group, row.Variant), row.Time, false)
	}
	return r
}
