//go:build !linux

package storage

import (
	"fmt"
	"os"
)

// mapFile falls back to a plain read on platforms without the Linux mmap
// path; the interface matches mmap_linux.go.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: %w", err)
	}
	return data, func() error { return nil }, nil
}
