package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

const analyzeQuery = `MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q)`

func TestExplainEndpointPlanOnly(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := post(t, srv, "/explain", QueryRequest{Query: analyzeQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ExplainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Plan == "" {
		t.Fatal("no plan in response")
	}
	if er.Analysis != nil {
		t.Fatal("plain /explain attached an analysis")
	}
}

func TestExplainEndpointAnalyze(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := post(t, srv, "/explain", QueryRequest{Query: analyzeQuery, Analyze: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ExplainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Analysis == nil {
		t.Fatalf("no analysis in response: %s", body)
	}
	if len(er.Analysis.Ops) == 0 {
		t.Fatal("analysis has no operator rows")
	}

	// The wire contract: each operator is a JSON object with named fields,
	// not a pre-rendered string.
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	analysis, ok := raw["analysis"].(map[string]any)
	if !ok {
		t.Fatalf("analysis not an object: %s", body)
	}
	ops, ok := analysis["operators"].([]any)
	if !ok || len(ops) == 0 {
		t.Fatalf("operators not a non-empty array: %s", body)
	}
	first, ok := ops[0].(map[string]any)
	if !ok {
		t.Fatalf("operator rows are not objects: %s", body)
	}
	if _, ok := first["op"]; !ok {
		t.Fatalf("operator row lacks op field: %v", first)
	}
}

func TestQueryEndpointExplainAnalyzePrefix(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := post(t, srv, "/query", QueryRequest{Query: "EXPLAIN ANALYZE " + analyzeQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Analysis == nil {
		t.Fatalf("EXPLAIN ANALYZE via /query returned no analysis: %s", body)
	}
	if len(qr.Rows) != 0 {
		t.Fatalf("EXPLAIN ANALYZE returned result rows: %v", qr.Rows)
	}

	resp, body = post(t, srv, "/query", QueryRequest{Query: "EXPLAIN " + analyzeQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr = QueryResponse{}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Plan == "" {
		t.Fatalf("EXPLAIN via /query returned no plan: %s", body)
	}
}
