package pattern

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	for v := 0; v < 6; v++ {
		b.SetLabel(graph.VertexID(v), "Person")
	}
	b.SetLabel(0, "SIGA").SetLabel(1, "SIGA")
	b.SetLabel(2, "SIGB")
	b.SetLabel(3, "SIGC").SetLabel(4, "SIGC")
	b.SetProp("id", graph.Int64Column{100, 101, 102, 103, 104, 105})
	b.SetProp("name", graph.StringColumn{"a", "b", "c", "d", "e", "f"})
	b.SetProp("blocked", graph.BoolColumn{false, true, false, false, true, false})
	b.AddEdge("knows", 0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeterminerValidate(t *testing.T) {
	good := Determiner{KMin: 1, KMax: 3, Dir: graph.Both, Type: Any}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid determiner rejected: %v", err)
	}
	bad := []Determiner{
		{KMin: -1, KMax: 3},
		{KMin: 2, KMax: 1},
		{KMin: 1, KMax: Unbounded, Type: Any},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("invalid determiner %v accepted", d)
		}
	}
	unbounded := Determiner{KMin: 1, KMax: Unbounded, Type: Shortest}
	if err := unbounded.Validate(); err != nil {
		t.Fatalf("unbounded shortest rejected: %v", err)
	}
}

func TestDeterminerReverse(t *testing.T) {
	d := Determiner{KMin: 1, KMax: 3, Dir: graph.Forward, Type: Any, EdgeLabels: []string{"transfer"}}
	r := d.Reverse()
	if r.Dir != graph.Reverse || r.KMin != 1 || r.KMax != 3 || r.Type != Any {
		t.Fatalf("Reverse = %v", r)
	}
	if d.Dir != graph.Forward {
		t.Fatal("Reverse mutated receiver")
	}
}

func TestDeterminerString(t *testing.T) {
	d := Determiner{KMin: 1, KMax: Unbounded, Dir: graph.Forward, Type: Shortest, EdgeLabels: []string{"t"}}
	s := d.String()
	if !strings.Contains(s, "∞") || !strings.Contains(s, "SHORTEST") {
		t.Fatalf("String = %q", s)
	}
	if Any.String() != "ANY" || Shortest.String() != "SHORTEST" {
		t.Fatal("PathType.String wrong")
	}
}

func communityTriangle() *Pattern {
	d := Determiner{KMin: 1, KMax: 2, Dir: graph.Both, Type: Any, EdgeLabels: []string{"knows"}}
	return &Pattern{
		Vertices: []Vertex{
			{Name: "a", Labels: []string{"Person", "SIGA"}},
			{Name: "b", Labels: []string{"Person", "SIGB"}},
			{Name: "c", Labels: []string{"Person", "SIGC"}},
		},
		Edges: []Edge{
			{Src: "a", Dst: "b", D: d},
			{Src: "b", Dst: "c", D: d},
			{Src: "a", Dst: "c", D: d},
		},
	}
}

func TestPatternValidate(t *testing.T) {
	p := communityTriangle()
	if err := p.Validate(); err != nil {
		t.Fatalf("community triangle rejected: %v", err)
	}
	if p.VertexIndex("b") != 1 || p.VertexIndex("zz") != -1 {
		t.Fatal("VertexIndex wrong")
	}

	bad := []*Pattern{
		{},
		{Vertices: []Vertex{{Name: ""}}},
		{Vertices: []Vertex{{Name: "a"}, {Name: "a"}}},
		{Vertices: []Vertex{{Name: "a"}}, Edges: []Edge{{Src: "a", Dst: "x", D: Determiner{KMax: 1}}}},
		{Vertices: []Vertex{{Name: "a"}}, Edges: []Edge{{Src: "x", Dst: "a", D: Determiner{KMax: 1}}}},
		{Vertices: []Vertex{{Name: "a"}, {Name: "b"}}, Edges: []Edge{{Src: "a", Dst: "a", D: Determiner{KMax: 1}}}},
		{Vertices: []Vertex{{Name: "a"}, {Name: "b"}}, Edges: []Edge{{Src: "a", Dst: "b", D: Determiner{KMin: 3, KMax: 1}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pattern %d accepted", i)
		}
	}
}

func TestCandidatesLabels(t *testing.T) {
	g := testGraph(t)
	bm, err := Candidates(g, Vertex{Name: "a", Labels: []string{"Person", "SIGA"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := bm.Bits(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("SIGA candidates = %v", got)
	}
	bm, err = Candidates(g, Vertex{Name: "q", Labels: []string{"Person"}, NotLabels: []string{"SIGA"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := bm.Bits(); !reflect.DeepEqual(got, []int{2, 3, 4, 5}) {
		t.Fatalf("NOT SIGA candidates = %v", got)
	}
}

func TestCandidatesNoConstraints(t *testing.T) {
	g := testGraph(t)
	bm, err := Candidates(g, Vertex{Name: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if bm.PopCount() != 6 {
		t.Fatalf("unconstrained candidates = %d, want 6", bm.PopCount())
	}
}

func TestCandidatesPropEq(t *testing.T) {
	g := testGraph(t)
	cases := []struct {
		v    Vertex
		want []int
	}{
		{Vertex{Name: "x", PropEq: map[string]any{"id": int64(102)}}, []int{2}},
		{Vertex{Name: "x", PropEq: map[string]any{"id": 102}}, []int{2}},
		{Vertex{Name: "x", PropEq: map[string]any{"id": float64(102)}}, []int{2}},
		{Vertex{Name: "x", PropEq: map[string]any{"name": "e"}}, []int{4}},
		{Vertex{Name: "x", PropEq: map[string]any{"blocked": true}}, []int{1, 4}},
		{Vertex{Name: "x", Labels: []string{"SIGA"}, PropEq: map[string]any{"blocked": true}}, []int{1}},
		{Vertex{Name: "x", PropEq: map[string]any{"id": int64(999)}}, nil},
	}
	for i, c := range cases {
		bm, err := Candidates(g, c.v)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := bm.Bits()
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: candidates = %v, want %v", i, got, c.want)
		}
	}
}

func TestCandidatesErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := Candidates(g, Vertex{Name: "x", Labels: []string{"Nope"}}); err == nil {
		t.Fatal("unknown label accepted")
	}
	if _, err := Candidates(g, Vertex{Name: "x", PropEq: map[string]any{"nope": 1}}); err == nil {
		t.Fatal("unknown property accepted")
	}
	// Unknown NotLabel is harmless (excluding nothing).
	bm, err := Candidates(g, Vertex{Name: "x", NotLabels: []string{"Nope"}})
	if err != nil || bm.PopCount() != 6 {
		t.Fatalf("NotLabels(missing) = %v, %v", bm.PopCount(), err)
	}
}

func TestPropEqualMixedNumerics(t *testing.T) {
	if !propEqual(int64(5), 5) || !propEqual(int64(5), int64(5)) || !propEqual(int64(5), float64(5)) {
		t.Fatal("int64 column comparisons failed")
	}
	if !propEqual(float64(2.5), 2.5) {
		t.Fatal("float column comparison failed")
	}
	if propEqual("x", 5) || propEqual(int64(5), "5") || propEqual(true, 1) {
		t.Fatal("cross-type comparisons should fail")
	}
	if !propEqual(true, true) || propEqual(false, true) {
		t.Fatal("bool comparison wrong")
	}
}

func TestResolveEdgeSetsWithFilter(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge("t", 0, 1).AddEdge("t", 1, 2)
	b.SetEdgeProp("t", "amount", graph.Int64Column{100, 200})
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Determiner{KMin: 1, KMax: 1, Dir: graph.Forward, Type: Any,
		EdgeLabels: []string{"t"}, EdgePropEq: map[string]any{"amount": 200}}
	sets, err := ResolveEdgeSets(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Len() != 1 {
		t.Fatalf("filtered sets = %d with %d edges", len(sets), sets[0].Len())
	}
	if s, dst := sets[0].Edge(0); s != 1 || dst != 2 {
		t.Fatalf("kept edge = (%d,%d)", s, dst)
	}

	// No constraint → original shared sets, no copy.
	d.EdgePropEq = nil
	sets, err = ResolveEdgeSets(g, d)
	if err != nil || sets[0] != g.Edges("t") {
		t.Fatalf("unfiltered resolution should return the shared set (%v)", err)
	}

	d.EdgePropEq = map[string]any{"nope": 1}
	if _, err := ResolveEdgeSets(g, d); err == nil {
		t.Fatal("unknown edge property accepted")
	}
}
