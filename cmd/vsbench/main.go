// Command vsbench regenerates the tables and figures of the VertexSurge
// paper's evaluation (§6) on the synthetic stand-in datasets.
//
// Usage:
//
//	vsbench -exp all -scale 0.02
//	vsbench -exp fig9 -scale 0.05 -kmax 3
//	vsbench -exp fig9 -scale 0.02 -json out/
//
// Experiments: table1, fig2b, fig6, fig7, fig8, table2, fig9, ablations,
// cache, all. The cache experiment measures the engine-level
// reachability-matrix cache on repeated queries (cold vs warm).
// Scale 1.0 means the paper's dataset sizes (Twitter2010 at scale 1.0
// needs a very large machine; the default regenerates every shape in
// seconds).
//
// With -json DIR each experiment additionally writes a machine-readable
// BENCH_<exp>_<scale>.json record (schema, host fingerprint, per-case
// median/p95 ns) that scripts/benchdiff.go compares across runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsbench: ")
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig2b|fig6|fig7|fig8|table2|fig9|ablations|cache|all")
		scale   = flag.Float64("scale", 0.02, "dataset scale relative to Table 1")
		budget  = flag.Int64("budget", 20_000_000, "baseline intermediate-tuple budget (timeout stand-in)")
		workers = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		kmax    = flag.Int("kmax", 0, "override the experiment's k_max sweep upper bound")
		social  = flag.String("social", "", "comma-separated social datasets for fig6 (default LastFM,Epinions,LDBC-SN-SF100)")
		jsonDir = flag.String("json", "", "also write BENCH_<exp>_<scale>.json records into this directory")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Budget: *budget, Workers: *workers}
	w := os.Stdout
	// The text output opens with the same host fingerprint the JSON
	// records carry, so saved bench_results_*.txt files are
	// self-describing.
	host := bench.CollectHost()
	fmt.Fprintf(w, "VertexSurge evaluation harness — scale %g, budget %d tuples\n", *scale, *budget)
	fmt.Fprintf(w, "host: %s %s/%s GOMAXPROCS=%d cpus=%d git=%s\n",
		host.GoVersion, host.GOOS, host.GOARCH, host.GOMAXPROCS, host.NumCPU, host.GitSHA)
	if host.CPUModel != "" {
		fmt.Fprintf(w, "cpu:  %s\n", host.CPUModel)
	}

	// emit writes the experiment's JSON record when -json is set.
	emit := func(rec *bench.Record) error {
		if *jsonDir == "" {
			return nil
		}
		path, err := rec.Write(*jsonDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
		return nil
	}

	pick := func(def int) int {
		if *kmax > 0 {
			return *kmax
		}
		return def
	}
	var socialList []string
	if *social != "" {
		socialList = strings.Split(*social, ",")
	}

	run := map[string]func() error{
		"table1": func() error {
			rows, err := bench.Table1(cfg)
			if err != nil {
				return err
			}
			bench.PrintTable1(w, cfg, rows)
			return emit(bench.RecordTable1(cfg, rows))
		},
		"fig2b": func() error {
			rows, err := bench.Fig2b(cfg, pick(4))
			if err != nil {
				return err
			}
			bench.PrintFig2b(w, rows)
			return emit(bench.RecordFig2b(cfg, rows))
		},
		"fig6": func() error {
			cells, err := bench.Fig6(cfg, socialList)
			if err != nil {
				return err
			}
			bench.PrintFig6(w, cells)
			return emit(bench.RecordFig6(cfg, cells))
		},
		"fig7": func() error {
			rows, err := bench.Fig7(cfg, pick(6))
			if err != nil {
				return err
			}
			bench.PrintFig7(w, rows)
			return emit(bench.RecordFig7(cfg, rows))
		},
		"fig8": func() error {
			rows, err := bench.Fig8(cfg)
			if err != nil {
				return err
			}
			bench.PrintFig8(w, rows)
			return emit(bench.RecordFig8(cfg, rows))
		},
		"table2": func() error {
			rows, err := bench.Table2(cfg, pick(3))
			if err != nil {
				return err
			}
			bench.PrintTable2(w, rows)
			return emit(bench.RecordTable2(cfg, rows))
		},
		"ablations": func() error {
			rows, err := bench.Ablations(cfg)
			if err != nil {
				return err
			}
			bench.PrintAblations(w, rows)
			return emit(bench.RecordAblations(cfg, rows))
		},
		"fig9": func() error {
			rows, err := bench.Fig9(cfg, pick(3))
			if err != nil {
				return err
			}
			bench.PrintFig9(w, rows)
			return emit(bench.RecordFig9(cfg, rows))
		},
		"cache": func() error {
			rows, err := bench.Cache(cfg)
			if err != nil {
				return err
			}
			bench.PrintCache(w, rows)
			return emit(bench.RecordCache(cfg, rows))
		},
	}

	order := []string{"table1", "fig2b", "fig6", "fig7", "fig8", "table2", "fig9", "ablations", "cache"}
	if *exp != "all" {
		fn, ok := run[*exp]
		if !ok {
			log.Fatalf("unknown experiment %q (want one of %s, all)", *exp, strings.Join(order, ", "))
		}
		if err := fn(); err != nil {
			log.Fatal(err)
		}
		return
	}
	for _, name := range order {
		if err := run[name](); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
}
