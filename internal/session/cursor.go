package session

import (
	"context"
	"errors"
	"sync"

	"repro/internal/cypher"
	"repro/internal/engine"
)

// ErrCursorClosed is returned by Fetch on a discarded or exhausted cursor.
var ErrCursorClosed = errors.New("session: cursor is closed")

// Cursor is one query's result, consumed in client-driven batches. A
// streaming cursor is fed by a producer goroutine running cypher.Stream
// into a bounded buffer; a materialized cursor pages through rows already
// in memory. Fetch and Discard are safe to call from the transport's
// goroutine while the producer runs; a cursor is single-consumer.
type Cursor struct {
	id   uint64
	sess *Session
	cols []string

	// Streaming state: producer sends rows on ch and closes it after
	// recording perr; done closes with ch (ordering: perr, then close).
	streaming bool
	ch        chan []any
	done      chan struct{}
	cancel    context.CancelFunc
	perr      error

	// Materialized state.
	res  *cypher.Result
	rows [][]any

	reserved int64
	release  sync.Once

	mu        sync.Mutex
	pos       int
	fetched   int64
	discarded bool
	exhausted bool
}

// ID returns the service-assigned cursor id.
func (c *Cursor) ID() uint64 { return c.id }

// Columns returns the result's column names, known before the first row.
func (c *Cursor) Columns() []string { return c.cols }

// Streaming reports whether the cursor streams (constant server memory) or
// serves a materialized result.
func (c *Cursor) Streaming() bool { return c.streaming }

// Fetched reports the rows delivered to the client so far.
func (c *Cursor) Fetched() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fetched
}

// Buffered reports the rows currently sitting in the stream buffer — by
// construction never more than the service's FetchBatch (0 for
// materialized cursors).
func (c *Cursor) Buffered() int {
	if !c.streaming {
		return 0
	}
	return len(c.ch)
}

// Result returns the materialized result backing a non-streaming cursor
// (plan text, timings, analysis) — nil for streaming cursors.
func (c *Cursor) Result() *cypher.Result {
	if c.streaming {
		return nil
	}
	return c.res
}

// produce runs the streaming query, feeding the bounded buffer. Emit
// blocks when the buffer is full — that backpressure holds the engine's
// join at one batch ahead of the client. A canceled context (Discard,
// client disconnect, KILL, QueryTimeout) unblocks the send and unwinds the
// engine at its cooperative poll points.
func (c *Cursor) produce(ctx context.Context, eng *engine.Engine, q *cypher.Query, params map[string]any) {
	// The emit callback selects on the query context Stream provides (a
	// child of ctx that KILL also cancels), not ctx itself — a kill must
	// unblock a producer waiting on a full buffer no one is fetching.
	err := cypher.Stream(ctx, eng, q, params, func(qctx context.Context, row []any) error {
		// Check before the select: when the buffer has room AND the query
		// was killed, both cases are ready and select would pick at random —
		// a dead query must stop emitting immediately, not probabilistically.
		if qctx.Err() != nil {
			return qctx.Err()
		}
		select {
		case c.ch <- row:
			return nil
		case <-qctx.Done():
			return qctx.Err()
		}
	})
	c.perr = err
	close(c.ch)
	close(c.done)
}

// Fetch returns up to max rows (max <= 0 = the service's FetchBatch),
// blocking on a streaming cursor until that many rows arrive or the stream
// ends. more=false means the result is complete — the cursor closed itself
// and released its memory reservation; err carries the producer's failure
// (including a KILL's context.Canceled) when the stream ended abnormally.
func (c *Cursor) Fetch(max int) (rows [][]any, more bool, err error) {
	if max <= 0 {
		max = c.sess.svc.opts.FetchBatch
	}
	c.mu.Lock()
	if c.discarded || c.exhausted {
		c.mu.Unlock()
		return nil, false, ErrCursorClosed
	}
	if !c.streaming {
		end := min(c.pos+max, len(c.rows))
		rows = c.rows[c.pos:end]
		c.pos = end
		c.fetched += int64(len(rows))
		more = c.pos < len(c.rows)
		if !more {
			c.exhausted = true
		}
		c.mu.Unlock()
		if !more {
			c.close()
		}
		return rows, more, nil
	}
	c.mu.Unlock()

	for len(rows) < max {
		row, ok := <-c.ch
		if !ok {
			// Producer finished: perr was written before the close.
			err = c.perr
			c.mu.Lock()
			c.exhausted = true
			c.fetched += int64(len(rows))
			c.mu.Unlock()
			c.close()
			return rows, false, err
		}
		rows = append(rows, row)
	}
	c.mu.Lock()
	c.fetched += int64(len(rows))
	c.mu.Unlock()
	return rows, true, nil
}

// Discard abandons the result: the producer is canceled (the engine
// unwinds cooperatively), the memory reservation is released, and the
// cursor leaves the session. Fetch afterwards returns ErrCursorClosed.
// Idempotent.
func (c *Cursor) Discard() {
	c.mu.Lock()
	if c.discarded {
		c.mu.Unlock()
		return
	}
	c.discarded = true
	c.mu.Unlock()
	if c.cancel != nil {
		c.cancel()
	}
	c.close()
}

// close releases the reservation and detaches from the session, exactly
// once across the exhaustion, discard, and session-close paths.
func (c *Cursor) close() {
	c.release.Do(func() {
		if c.cancel != nil {
			c.cancel()
		}
		c.sess.releaseBytes(c.reserved)
		c.sess.dropCursor(c)
	})
}
