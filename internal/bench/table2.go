package bench

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/vexpand"
)

// Table2Row compares join vs expand intermediate-result counts at one
// k_max.
type Table2Row struct {
	KMax int
	// Join is the number of flat tuples a join plan materializes (walks,
	// counted by dynamic programming).
	Join float64
	// Expand is VExpand's intermediate bit count (distinct (source, dst)
	// pairs per step).
	Expand int64
	// Ratio = Join / Expand (the paper reports 1 / 1.52 / 8.51).
	Ratio float64
	// FlatBytes and MatrixBytes compare the flat 64-bit-tuple memory a
	// join plan needs against the bit-matrix memory (the paper reports
	// a 66× reduction at k_max = 3).
	FlatBytes   int64
	MatrixBytes int64
	MemRatio    float64
}

// Table2Sources is the paper's source-set size for the single-VExpand
// microbenchmark (§6.3); it is scaled with the dataset.
const Table2Sources = 20480

// Table2 regenerates Table 2: intermediate result counts of the join
// method vs the expand method on the LDBC-SN-SF1000-scale graph, k_max
// 1..maxK, expanding from a Table2Sources-proportional source set.
func Table2(cfg Config, maxK int) ([]Table2Row, error) {
	ds := newDatasets(cfg)
	d, err := ds.get("LDBC-SN-SF1000")
	if err != nil {
		return nil, err
	}
	g := d.Graph
	numSources := int(float64(Table2Sources) * cfg.scale())
	if numSources < 64 {
		numSources = 64
	}
	if numSources > g.NumVertices() {
		numSources = g.NumVertices()
	}
	sources := make([]graph.VertexID, numSources)
	for i := range sources {
		sources[i] = graph.VertexID(i)
	}
	j := baseline.NewJoinEngine(g)

	var rows []Table2Row
	for k := 1; k <= maxK; k++ {
		det := knowsDet(k)
		joinCount, err := j.WalkCountDP(sources, det)
		if err != nil {
			return nil, err
		}
		r, err := vexpand.Expand(g, sources, det, vexpand.Options{
			Kernel: vexpand.Hilbert, Workers: cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			KMax:        k,
			Join:        joinCount,
			Expand:      r.Stats.IntermediateResults,
			FlatBytes:   int64(joinCount * 16), // two uncompressed 64-bit ints per tuple (§4.1)
			MatrixBytes: r.Stats.MatrixBytes,
		}
		if row.Expand > 0 {
			row.Ratio = row.Join / float64(row.Expand)
		}
		if row.MatrixBytes > 0 {
			row.MemRatio = float64(row.FlatBytes) / float64(row.MatrixBytes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable2 renders Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	header(w, "Table 2 — intermediate results: Join vs Expand (LDBC-SN-SF1000 scale)")
	fmt.Fprintf(w, "%-6s %14s %14s %12s %12s %14s %10s\n",
		"k_max", "Join", "Expand", "Join/Expand", "flat mem", "bitmatrix mem", "mem ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %14.3g %14d %12.2f %12s %14s %10.1fx\n",
			r.KMax, r.Join, r.Expand, r.Ratio,
			fmtBytes(r.FlatBytes), fmtBytes(r.MatrixBytes), r.MemRatio)
	}
}
