package engine

import (
	"context"
	"testing"

	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// collectSpans flattens a snapshot tree into name → snapshots.
func collectSpans(s *telemetry.SpanSnapshot, out map[string][]*telemetry.SpanSnapshot) {
	out[s.Name] = append(out[s.Name], s)
	for _, c := range s.Children {
		collectSpans(c, out)
	}
}

// TestMatchSpanTree pins the tentpole tracing contract: a Match under a
// trace emits one plan span, one expand span per pattern edge (annotated
// with the kernel and memo state), one intersect span, and an aggregate
// span — and every child's window falls inside its parent's. (Sibling
// durations may sum past the parent: the scheduler overlaps independent
// expands, so the old sum-of-children check no longer holds.)
func TestMatchSpanTree(t *testing.T) {
	g := socialGraph(t)
	e := New(g, Options{})
	d := knowsDet(1, 2)
	// All three edges share one determiner, so the pattern-symmetry memo
	// (§2.3.2) must answer at least one expansion for free.
	pat := &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "a", Labels: []string{"SIGA"}},
			{Name: "b", Labels: []string{"SIGB"}},
			{Name: "c", Labels: []string{"SIGC"}},
		},
		Edges: []pattern.Edge{
			{Src: "a", Dst: "b", D: d},
			{Src: "b", Dst: "c", D: d},
			{Src: "a", Dst: "c", D: d},
		},
	}

	ctx, root := telemetry.NewTrace(context.Background(), "query")
	if _, err := e.MatchContext(ctx, pat, MatchOptions{}); err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := root.Snapshot()

	byName := map[string][]*telemetry.SpanSnapshot{}
	collectSpans(snap, byName)

	if n := len(byName["plan"]); n != 1 {
		t.Fatalf("plan spans = %d, want 1", n)
	}
	if n := len(byName["expand"]); n != len(pat.Edges) {
		t.Fatalf("expand spans = %d, want %d (one per edge)", n, len(pat.Edges))
	}
	if n := len(byName["intersect"]); n != 1 {
		t.Fatalf("intersect spans = %d, want 1", n)
	}
	if n := len(byName["aggregate"]); n != 1 {
		t.Fatalf("aggregate spans = %d, want 1", n)
	}

	// Every expand span carries memo state, kernel, and source count; with
	// a fully symmetric triangle at least one must be a memo hit and at
	// least one a miss.
	hits, misses := 0, 0
	for _, es := range byName["expand"] {
		switch es.Attrs["memo"] {
		case "hit":
			hits++
		case "miss":
			misses++
		default:
			t.Fatalf("expand span without memo attribute: %+v", es.Attrs)
		}
		if k, ok := es.Attrs["kernel"].(string); !ok || k == "" {
			t.Fatalf("expand span without kernel attribute: %+v", es.Attrs)
		}
		if _, ok := es.Attrs["sources"]; !ok {
			t.Fatalf("expand span without sources attribute: %+v", es.Attrs)
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("memo hits = %d, misses = %d; want both > 0", hits, misses)
	}

	// Span windows must nest: every child starts no earlier and ends no
	// later than its parent (small slack: start/end are captured on
	// different goroutines under concurrent scheduling).
	const slackNs = int64(2e6)
	var checkNesting func(s *telemetry.SpanSnapshot)
	checkNesting = func(s *telemetry.SpanSnapshot) {
		for _, c := range s.Children {
			if c.StartUnixNs+slackNs < s.StartUnixNs {
				t.Fatalf("span %q child %q starts %dns before parent", s.Name, c.Name, s.StartUnixNs-c.StartUnixNs)
			}
			if c.EndUnixNs() > s.EndUnixNs()+slackNs {
				t.Fatalf("span %q child %q ends %dns after parent", s.Name, c.Name, c.EndUnixNs()-s.EndUnixNs())
			}
			checkNesting(c)
		}
	}
	checkNesting(snap)
}

// TestMatchWithoutTraceEmitsNoSpans pins the disabled path: without a trace
// in the context, Match runs and CurrentSpan stays nil throughout.
func TestMatchWithoutTraceEmitsNoSpans(t *testing.T) {
	g := socialGraph(t)
	e := New(g, Options{})
	pat := &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "a", Labels: []string{"SIGA"}},
			{Name: "b", Labels: []string{"SIGB"}},
		},
		Edges: []pattern.Edge{{Src: "a", Dst: "b", D: knowsDet(1, 2)}},
	}
	if _, err := e.MatchContext(context.Background(), pat, MatchOptions{}); err != nil {
		t.Fatal(err)
	}
	if sp := telemetry.CurrentSpan(context.Background()); sp != nil {
		t.Fatalf("CurrentSpan on background context = %v, want nil", sp)
	}
}
