package bitmatrix

import (
	"fmt"
	"math/bits"
)

// Bitmap is a flat fixed-size bit set over [0, Len).
//
// It backs BFS frontiers and visited sets in the per-source expand kernel,
// label-membership sets in the graph store, and candidate sets in the
// planner. The zero value is an empty 0-length bitmap; use NewBitmap.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap returns an all-zero bitmap over [0, n).
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmatrix: invalid bitmap length %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of addressable bits.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the raw backing words.
func (b *Bitmap) Words() []uint64 { return b.words }

// SizeBytes returns the memory footprint of the bit storage in bytes.
func (b *Bitmap) SizeBytes() int { return len(b.words) * 8 }

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i/64] |= 1 << uint(i%64)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/64] &^= 1 << uint(i%64)
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmatrix: bitmap index %d out of range %d", i, b.n))
	}
}

// Or computes b |= other. Lengths must match.
func (b *Bitmap) Or(other *Bitmap) {
	b.lenCheck(other)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And computes b &= other. Lengths must match.
func (b *Bitmap) And(other *Bitmap) {
	b.lenCheck(other)
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot computes b &^= other. Lengths must match.
func (b *Bitmap) AndNot(other *Bitmap) {
	b.lenCheck(other)
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

func (b *Bitmap) lenCheck(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmatrix: bitmap length mismatch %d vs %d", b.n, other.n))
	}
}

// Reset zeroes every bit, retaining the allocation.
func (b *Bitmap) Reset() {
	clear(b.words)
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b's bits with other's. Lengths must match.
func (b *Bitmap) CopyFrom(other *Bitmap) {
	b.lenCheck(other)
	copy(b.words, other.words)
}

// Equal reports whether b and other have the same length and bits.
func (b *Bitmap) Equal(other *Bitmap) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (b *Bitmap) PopCount() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit, in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, word := range b.words {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			fn(wi*64 + tz)
			word &= word - 1
		}
	}
}

// Bits returns the set bits as a sorted slice.
func (b *Bitmap) Bits() []int {
	out := make([]int, 0, b.PopCount())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// FillFrom sets every bit listed in ids.
func (b *Bitmap) FillFrom(ids []uint32) {
	for _, id := range ids {
		b.Set(int(id))
	}
}
