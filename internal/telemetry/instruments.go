package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry behind GET /metrics. Engine-level
// instruments below record into it from wherever queries run (HTTP server,
// REPL, CLI) — the exposition endpoint only reads.
var Default = NewRegistry()

// Engine-level instruments (the Figure 8 / Table 2 quantities, live).
var (
	// QueriesTotal counts completed queries (successful or not).
	QueriesTotal = Default.NewCounter("vs_queries_total",
		"Total queries executed.", nil)
	// QueriesFailed counts queries that returned an error.
	QueriesFailed = Default.NewCounter("vs_queries_failed_total",
		"Queries that failed with an error.", nil)
	// QueriesInFlight gauges currently executing queries.
	QueriesInFlight = Default.NewGauge("vs_queries_in_flight",
		"Queries currently executing.", nil)
	// ExpandMatrixBytes accumulates peak reachability-matrix bytes per
	// VExpand call (Table 2's memory column, as a running total).
	ExpandMatrixBytes = Default.NewCounter("vs_expand_matrix_bytes_total",
		"Cumulative peak bit-matrix bytes allocated by VExpand calls.", nil)
	// SpillWriteBytes / SpillWriteFiles / SpillReadBytes account the
	// out-of-core path (§5.3).
	SpillWriteBytes = Default.NewCounter("vs_spill_write_bytes_total",
		"Bytes written to spill files.", nil)
	SpillWriteFiles = Default.NewCounter("vs_spill_write_files_total",
		"Spill files created.", nil)
	SpillReadBytes = Default.NewCounter("vs_spill_read_bytes_total",
		"Bytes read back from spill files.", nil)
	// PanicsRecovered counts handler panics caught by the server's recover
	// middleware (each one also restores the in-flight gauge and registry
	// entry via the unwinding defers).
	PanicsRecovered = Default.NewCounter("vs_panics_total",
		"Handler panics recovered by the HTTP server.", nil)
)

// Engine-level matrix-cache and operator-scheduler instruments.
var (
	// MatrixCacheHits counts expansions answered by the engine-level
	// reachability-matrix cache (cross-query reuse; the query-local
	// symmetry memo reports separately as memo=hit spans).
	MatrixCacheHits = Default.NewCounter("vs_matrix_cache_hits_total",
		"Expansions answered by the engine-level reachability-matrix cache.", nil)
	// MatrixCacheEvictions counts LRU evictions from the matrix cache.
	MatrixCacheEvictions = Default.NewCounter("vs_matrix_cache_evictions_total",
		"Reachability matrices evicted from the engine-level cache.", nil)
	// MatrixCacheBytes gauges the cache's current resident bytes.
	MatrixCacheBytes = Default.NewGauge("vs_matrix_cache_bytes",
		"Bytes currently held by the engine-level reachability-matrix cache.", nil)
	// ExecParallelExpands counts expand operators that started while
	// another expand of the same query was already running — direct
	// evidence of the scheduler overlapping independent VExpands.
	ExecParallelExpands = Default.NewCounter("vs_exec_parallel_expands",
		"Expand operators that ran concurrently with another expand of the same query.", nil)
)

// Per-query cost attribution totals (telemetry v3): every completed query
// folds its attributed resources into these at registry completion, so the
// process-wide exposition carries the same quantities /debug/queries shows
// per query.
var (
	// QueryCostCPUSeconds accumulates operator busy time across queries
	// (see QueryInfo.AddCPUNanos for the measurement model).
	QueryCostCPUSeconds = Default.NewFloatCounter("vs_query_cost_cpu_seconds_total",
		"Cumulative operator busy time attributed to completed queries.", nil)
	// QueryCostBytes splits attributed bytes by resource.
	QueryCostMatrixBytes = Default.NewCounter("vs_query_cost_bytes",
		"Bytes attributed to completed queries by resource (matrix, cache, spill).",
		Labels{"resource": "matrix"})
	QueryCostCacheBytes = Default.NewCounter("vs_query_cost_bytes",
		"Bytes attributed to completed queries by resource (matrix, cache, spill).",
		Labels{"resource": "cache"})
	QueryCostSpillBytes = Default.NewCounter("vs_query_cost_bytes",
		"Bytes attributed to completed queries by resource (matrix, cache, spill).",
		Labels{"resource": "spill"})
	// QueryCostRows / QueryCostPairs total the tuples and expansion pairs
	// completed queries produced.
	QueryCostRows = Default.NewCounter("vs_query_cost_rows_total",
		"Result tuples produced by completed queries.", nil)
	QueryCostPairs = Default.NewCounter("vs_query_cost_pairs_total",
		"Expansion (source, dst) pairs emitted by completed queries.", nil)
)

// recordQueryCost folds one completed query's attribution into the
// process-wide cost counters.
func recordQueryCost(c QueryCost) {
	if c.CPUMs > 0 {
		QueryCostCPUSeconds.Add(c.CPUMs / 1000)
	}
	if c.MatrixBytes > 0 {
		QueryCostMatrixBytes.Add(c.MatrixBytes)
	}
	if c.CacheBytes > 0 {
		QueryCostCacheBytes.Add(c.CacheBytes)
	}
	if n := c.SpillWriteBytes + c.SpillReadBytes; n > 0 {
		QueryCostSpillBytes.Add(n)
	}
	if c.Rows > 0 {
		QueryCostRows.Add(c.Rows)
	}
	if c.Pairs > 0 {
		QueryCostPairs.Add(c.Pairs)
	}
}

// memStats is the engine-provided (used, limit) source behind the
// vs_memory_* gauges, swappable so the process's serving engine owns the
// numbers no matter how many engines tests construct.
var (
	memStatsOnce sync.Once
	memStatsFn   atomic.Value // func() (int64, int64)
)

// SetMemoryStats publishes an accountant's occupancy as
// vs_memory_in_use_bytes / vs_memory_limit_bytes on the Default registry
// (registered once; later calls only swap the source). usage returns
// (used, limit) bytes; limit ≤ 0 means unmetered.
func SetMemoryStats(usage func() (used, limit int64)) {
	memStatsFn.Store(usage)
	memStatsOnce.Do(func() {
		load := func() (int64, int64) {
			fn, _ := memStatsFn.Load().(func() (int64, int64))
			if fn == nil {
				return 0, 0
			}
			return fn()
		}
		Default.NewFuncGauge("vs_memory_in_use_bytes",
			"Bytes currently reserved against the engine memory budget (live intermediates plus cache residency).", nil,
			func() float64 { used, _ := load(); return float64(used) })
		Default.NewFuncGauge("vs_memory_limit_bytes",
			"Configured engine memory budget in bytes (0 = unlimited).", nil,
			func() float64 { _, limit := load(); return float64(limit) })
	})
}

// Per-stage latency histograms: one family, labeled by stage, matching the
// engine.Timings breakdown (Figure 8's components).
var (
	StageScan        = newStage("scan")
	StageExpand      = newStage("expand")
	StageUpdateVisit = newStage("update_visit")
	StageIntersect   = newStage("intersect")
	StageAggregate   = newStage("aggregate")
	StageTotal       = newStage("total")
)

func newStage(stage string) *Histogram {
	return Default.NewHistogram("vs_query_stage_seconds",
		"Per-stage query latency by stage (scan, expand, update_visit, intersect, aggregate, total).",
		Labels{"stage": stage}, nil)
}

// ObserveStages records one query's stage breakdown into the per-stage
// histograms. Zero-duration stages still observe (they are real samples of
// a stage that did no work).
func ObserveStages(scan, expand, updateVisit, intersect, aggregate, total time.Duration) {
	StageScan.Observe(scan.Seconds())
	StageExpand.Observe(expand.Seconds())
	StageUpdateVisit.Observe(updateVisit.Seconds())
	StageIntersect.Observe(intersect.Seconds())
	StageAggregate.Observe(aggregate.Seconds())
	StageTotal.Observe(total.Seconds())
}
