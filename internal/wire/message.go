package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Framing: every message is one frame — a u32 big-endian payload length
// followed by the payload. A zero-length frame is a NOOP keep-alive; either
// side may send one at any time and the receiver skips it. The payload's
// first byte is the message type, the rest is the body (one encoded value,
// usually a map — except RECORD, whose body is the compact row encoding).
const (
	// Magic opens the handshake: the client sends these 4 bytes followed by
	// a u32 big-endian proposed protocol version; the server answers with
	// the u32 version it accepts, or 0 before closing when no version
	// overlaps.
	Magic = "VSWP"
	// Version is the current protocol version.
	Version uint32 = 1
	// MaxFrame caps a frame's payload so a hostile peer cannot make the
	// receiver allocate unboundedly.
	MaxFrame = 16 << 20
)

// Message types. Requests flow client→server, responses server→client.
const (
	MsgHello   = 0x01 // client introduction; body {client}
	MsgRun     = 0x02 // start a query; body {query, params?}
	MsgFetch   = 0x03 // pull rows; body {cursor, n?}
	MsgDiscard = 0x04 // abandon a cursor; body {cursor}
	MsgPing    = 0x05 // liveness probe; empty body
	MsgGoodbye = 0x06 // orderly close; empty body

	MsgSuccess = 0x70 // request completed; body is a metadata map
	MsgRecord  = 0x71 // one result row; body is the compact row encoding
	MsgPong    = 0x72 // PING answer; empty body
	MsgFailure = 0x7F // request failed; body {code, message}
)

// Failure codes carried in FAILURE {code}.
const (
	CodeSyntax   = "syntax_error"   // query failed to parse
	CodeQuery    = "query_error"    // execution failed (binding, budget, timeout, kill)
	CodeProtocol = "protocol_error" // malformed or out-of-sequence message
)

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads the next non-NOOP frame, reusing buf when it fits.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 {
			continue // NOOP keep-alive
		}
		if n > MaxFrame {
			return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFrame)
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
}

// AppendMessage encodes a typed message with a map body (nil body = empty
// map) into buf.
func AppendMessage(buf []byte, msg byte, body map[string]any) ([]byte, error) {
	buf = append(buf, msg)
	if body == nil {
		body = map[string]any{}
	}
	return appendValue(buf, body)
}

// ParseMessage splits a frame into its type and decoded map body. RECORD
// frames must not go through here — their body is a row, not a map.
func ParseMessage(frame []byte) (byte, map[string]any, error) {
	if len(frame) == 0 {
		return 0, nil, fmt.Errorf("%w: empty message", ErrBadValue)
	}
	msg := frame[0]
	if len(frame) == 1 {
		return msg, map[string]any{}, nil
	}
	v, off, err := readValue(frame, 1)
	if err != nil {
		return 0, nil, err
	}
	if off != len(frame) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after message body", ErrBadValue, len(frame)-off)
	}
	body, ok := v.(map[string]any)
	if !ok {
		return 0, nil, fmt.Errorf("%w: message body is %T, want map", ErrBadValue, v)
	}
	return msg, body, nil
}

// BodyString extracts a string field from a message body.
func BodyString(body map[string]any, key string) (string, bool) {
	s, ok := body[key].(string)
	return s, ok
}

// BodyInt extracts an integer field from a message body.
func BodyInt(body map[string]any, key string) (int64, bool) {
	n, ok := body[key].(int64)
	return n, ok
}
