package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/engine"
)

const countQuery = `MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q)`

// scrapeCounter reads one un-labeled counter value from /metrics.
func scrapeCounter(t *testing.T, srv *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("metric %s not found in exposition:\n%s", name, buf.String())
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMetricsEndpoint pins the exposition contract of GET /metrics: valid
// Prometheus text format with HELP/TYPE lines, per-stage histograms, and a
// query counter that moves when POST /query runs.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)

	before := scrapeCounter(t, srv, "vs_queries_total")
	resp, body := post(t, srv, "/query", QueryRequest{Query: countQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	after := scrapeCounter(t, srv, "vs_queries_total")
	if after < before+1 {
		t.Fatalf("vs_queries_total %v -> %v, want +1", before, after)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE vs_queries_total counter",
		"# TYPE vs_queries_in_flight gauge",
		"# TYPE vs_query_stage_seconds histogram",
		`vs_query_stage_seconds_bucket{stage="total",le="+Inf"}`,
		`vs_query_stage_seconds_count{stage="expand"}`,
		`vs_query_stage_seconds_sum{stage="intersect"}`,
		"# TYPE vs_matrix_cache_hits_total counter",
		"# TYPE vs_matrix_cache_evictions_total counter",
		"# TYPE vs_matrix_cache_bytes gauge",
		"# TYPE vs_exec_parallel_expands counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestQueryProfile pins the PROFILE surface of POST /query: both the JSON
// flag and the PROFILE keyword return the operator span tree, and its
// children's durations sum to no more than the root's.
func TestQueryProfile(t *testing.T) {
	srv, _ := testServer(t)
	for _, req := range []QueryRequest{
		{Query: countQuery, Profile: true},
		{Query: "PROFILE " + countQuery},
	} {
		resp, body := post(t, srv, "/query", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Profile == nil {
			t.Fatalf("request %+v: no profile in response", req)
		}
		if qr.Profile.Name != "query" {
			t.Fatalf("profile root = %q, want query", qr.Profile.Name)
		}
		names := map[string]bool{}
		var sum float64
		for _, c := range qr.Profile.Children {
			sum += c.DurationMs
			names[c.Name] = true
		}
		if sum > qr.Profile.DurationMs*1.01+0.1 {
			t.Fatalf("children sum %.3fms > root %.3fms", sum, qr.Profile.DurationMs)
		}
		for _, want := range []string{"plan", "expand", "intersect"} {
			if !names[want] {
				t.Fatalf("profile missing %q span; got %v", want, names)
			}
		}
	}

	// Without either opt-in, the profile field stays absent.
	resp, body := post(t, srv, "/query", QueryRequest{Query: countQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte(`"profile"`)) {
		t.Fatalf("unexpected profile in plain response: %s", body)
	}
}

// TestRequestBodyLimit pins the MaxBytesReader satellite: an oversized body
// returns 400 with a clear error, not a connection reset or a 500.
func TestRequestBodyLimit(t *testing.T) {
	g, err := datagen.SocialNetwork(datagen.SocialConfig{
		NumVertices: 50, NumEdges: 100, Seed: 8, CommunityFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWithOptions(engine.New(g, engine.Options{}), Options{MaxRequestBytes: 256}))
	defer srv.Close()

	big, err := json.Marshal(QueryRequest{Query: strings.Repeat("x", 1024)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d (%s), want 400", resp.StatusCode, buf.String())
	}
	if !strings.Contains(buf.String(), "request body exceeds 256 bytes") {
		t.Fatalf("error body = %s", buf.String())
	}

	// A body under the limit still works.
	resp2, body2 := post(t, srv, "/query", QueryRequest{Query: countQuery})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("small body status %d: %s", resp2.StatusCode, body2)
	}
}

// TestRequestIDAndAccessLog pins the operational wiring: every response
// carries a distinct X-Request-Id and, with a Logger set, one access-log
// record naming it.
func TestRequestIDAndAccessLog(t *testing.T) {
	g, err := datagen.SocialNetwork(datagen.SocialConfig{
		NumVertices: 50, NumEdges: 100, Seed: 8, CommunityFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	srv := httptest.NewServer(NewWithOptions(engine.New(g, engine.Options{}), Options{Logger: logger}))
	defer srv.Close()

	ids := map[string]bool{}
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" || ids[id] {
			t.Fatalf("request %d: X-Request-Id = %q (seen: %v)", i, id, ids)
		}
		ids[id] = true
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "path=/healthz") || !strings.Contains(logs, "status=200") {
		t.Fatalf("access log missing request record:\n%s", logs)
	}
	for id := range ids {
		if !strings.Contains(logs, "id="+id) {
			t.Fatalf("access log missing id %s:\n%s", id, logs)
		}
	}
}

// TestSlowQueryLog pins the -slow-query wiring: a query over the threshold
// logs its span tree.
func TestSlowQueryLog(t *testing.T) {
	g, err := datagen.SocialNetwork(datagen.SocialConfig{
		NumVertices: 200, NumEdges: 700, Seed: 8, CommunityFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	srv := httptest.NewServer(NewWithOptions(engine.New(g, engine.Options{}), Options{
		Logger:    logger,
		SlowQuery: time.Nanosecond, // everything is slow
	}))
	defer srv.Close()

	resp, body := post(t, srv, "/query", QueryRequest{Query: countQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "slow query") {
		t.Fatalf("no slow-query record:\n%s", logs)
	}
	if !strings.Contains(logs, "intersect") {
		t.Fatalf("slow-query record has no span tree:\n%s", logs)
	}
}

// TestTimingsWallTime pins the toTimings fix: TotalMs is end-to-end wall
// time, so it is at least as large as every engine-reported stage.
func TestTimingsWallTime(t *testing.T) {
	srv, _ := testServer(t)
	resp, body := post(t, srv, "/query", QueryRequest{Query: countQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	tm := qr.Timings
	if tm.TotalMs <= 0 {
		t.Fatalf("TotalMs = %v", tm.TotalMs)
	}
	for name, stage := range map[string]float64{
		"scan": tm.ScanMs, "expand": tm.ExpandMs, "update_visit": tm.UpdateVisitMs,
		"intersect": tm.IntersectMs, "aggregate": tm.AggregateMs,
	} {
		if stage > tm.TotalMs {
			t.Errorf("%s %.3fms exceeds wall total %.3fms", name, stage, tm.TotalMs)
		}
	}
}
