package datagen

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

const sampleEdgeList = `
# SNAP-style comment
% KONECT-style comment
10 20
20 30
30 10
10 40

40 9999
`

func TestImportEdgeList(t *testing.T) {
	g, err := ImportEdgeList(strings.NewReader(sampleEdgeList), ImportConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("|V| = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("|E| = %d, want 5", g.NumEdges())
	}
	if g.Label("Person").PopCount() != 5 {
		t.Fatal("base label missing")
	}
	// Dense renumbering preserves original ids in origId.
	orig := g.Prop("origId").(graph.Int64Column)
	wantOrig := []int64{10, 20, 30, 40, 9999}
	for i, want := range wantOrig {
		if orig[i] != want {
			t.Fatalf("origId[%d] = %d, want %d", i, orig[i], want)
		}
	}
	// Edges follow the remapping: 10→20 becomes 0→1.
	knows := g.Edges("knows")
	if s, d := knows.Edge(0); s != 0 || d != 1 {
		t.Fatalf("first edge = (%d,%d), want (0,1)", s, d)
	}
	// id property starts at 1000 like the generators.
	if v, ok := g.FindByInt64("id", 1002); !ok || v != 2 {
		t.Fatalf("FindByInt64 = %d,%v", v, ok)
	}
}

func TestImportEdgeListCustomConfig(t *testing.T) {
	g, err := ImportEdgeList(strings.NewReader("1 2\n2 3\n"), ImportConfig{
		EdgeLabel: "transfer", BaseLabel: "Account", Seed: 1, CommunityFraction: 0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges("transfer") == nil || g.Label("Account") == nil {
		t.Fatal("custom labels not applied")
	}
}

func TestImportEdgeListErrors(t *testing.T) {
	cases := []string{
		"",            // empty
		"# only\n",    // comments only
		"1\n",         // one field
		"x 2\n",       // bad source
		"1 y\n",       // bad destination
		"1 2\nbroken", // trailing bad line
	}
	for _, src := range cases {
		if _, err := ImportEdgeList(strings.NewReader(src), ImportConfig{}); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestImportedGraphAnswersQueries(t *testing.T) {
	// A triangle among remapped vertices is findable end to end.
	g, err := ImportEdgeList(strings.NewReader("7 8\n8 9\n9 7\n"), ImportConfig{Seed: 2, CommunityFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	knows := g.Edges("knows")
	if knows.Len() != 3 {
		t.Fatalf("edges = %d", knows.Len())
	}
	// 0-1-2 triangle: 0 reaches both others in ≤1 undirected hop.
	if got := len(knows.Neighbors(0, graph.Both)); got != 2 {
		t.Fatalf("deg(0) = %d, want 2", got)
	}
}
