package cypher

import (
	"context"
	"strings"
	"testing"
)

const triangleSrc = `MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q)`

func TestParseExplainFlags(t *testing.T) {
	q, err := Parse("EXPLAIN " + triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain || q.Analyze {
		t.Fatalf("EXPLAIN parsed as Explain=%v Analyze=%v", q.Explain, q.Analyze)
	}

	q, err = Parse("EXPLAIN ANALYZE " + triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain || !q.Analyze {
		t.Fatalf("EXPLAIN ANALYZE parsed as Explain=%v Analyze=%v", q.Explain, q.Analyze)
	}

	q, err = Parse(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if q.Explain || q.Analyze {
		t.Fatalf("plain query parsed as Explain=%v Analyze=%v", q.Explain, q.Analyze)
	}

	if _, err := Parse("EXPLAIN PROFILE " + triangleSrc); err == nil {
		t.Fatal("EXPLAIN PROFILE accepted")
	}
}

func TestRunExplainReturnsPlanWithoutExecuting(t *testing.T) {
	e := socialEngine(t)
	res := run(t, e, "EXPLAIN "+triangleSrc, nil)
	if res.Plan == "" {
		t.Fatal("EXPLAIN returned no plan")
	}
	if len(res.Rows) != 0 || len(res.Columns) != 0 {
		t.Fatalf("EXPLAIN executed the query: %d rows, %d columns", len(res.Rows), len(res.Columns))
	}
	if res.Analysis != nil {
		t.Fatal("plain EXPLAIN attached an analysis")
	}
}

func TestRunExplainAnalyze(t *testing.T) {
	e := socialEngine(t)
	res := run(t, e, "EXPLAIN ANALYZE "+triangleSrc, nil)
	a := res.Analysis
	if a == nil {
		t.Fatal("EXPLAIN ANALYZE returned no analysis")
	}
	if a.Count <= 0 {
		t.Fatalf("analysis count = %d, want > 0", a.Count)
	}
	kinds := map[string]int{}
	for _, op := range a.Ops {
		kinds[op.Op]++
	}
	if kinds["scan"] != 2 || kinds["expand"] != 1 {
		t.Fatalf("operator kinds = %v, want 2 scans and 1 expand", kinds)
	}
	if out := a.Render(); !strings.Contains(out, "est/act") || !strings.Contains(out, "expand") {
		t.Fatalf("render lacks est/act table:\n%s", out)
	}
}

func TestAnalyzeQueryRejections(t *testing.T) {
	e := socialEngine(t)
	cases := []struct {
		src    string
		params map[string]any
	}{
		{`EXPLAIN ANALYZE UNWIND $ids AS x MATCH (p {id:x})-[:knows]-(q) RETURN x, COUNT(DISTINCT q)`,
			map[string]any{"ids": []int64{1000, 1001}}},
		{`EXPLAIN ANALYZE MATCH (a:Person{id:1000}), (b:Person{id:1005}), p=shortestPath((a)-[:knows*1..]-(b)) RETURN length(p)`, nil},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %s: %v", c.src, err)
		}
		if _, err := RunContext(context.Background(), e, q, c.params); err == nil {
			t.Errorf("EXPLAIN ANALYZE accepted: %s", c.src)
		}
	}
}
