package datagen

import (
	"fmt"

	"repro/internal/graph"
)

// Dataset couples a generated graph with its Table-1 identity.
type Dataset struct {
	Name string
	// Kind is "social", "bank", or "financial".
	Kind string
	// Scale is the applied down-scaling factor relative to Table 1
	// (1.0 = the paper's size).
	Scale float64
	Graph *graph.Graph
	// Layout is non-nil for financial graphs.
	Layout *FinLayout
}

// table1 records the paper's dataset sizes (Table 1).
var table1 = []struct {
	name string
	kind string
	v, e int
}{
	{"LastFM", "social", 7_600, 27_800},
	{"Epinions", "social", 75_000, 509_000},
	{"LDBC-SN-SF100", "social", 480_000, 23_000_000},
	{"Rabobank", "bank", 1_620_000, 4_130_000},
	{"LDBC-SN-SF1000", "social", 3_200_000, 202_000_000},
	{"LiveJournal", "social", 4_800_000, 68_000_000},
	{"LDBC-FinBench-SF10", "financial", 5_100_000, 22_000_000},
	{"Twitter2010", "social", 41_000_000, 1_470_000_000},
}

// Table1Names lists the paper's datasets in Table-1 order.
func Table1Names() []string {
	out := make([]string, len(table1))
	for i, d := range table1 {
		out[i] = d.name
	}
	return out
}

// Table1Size returns the paper-reported |V| and |E| for a dataset name.
func Table1Size(name string) (v, e int, err error) {
	for _, d := range table1 {
		if d.name == name {
			return d.v, d.e, nil
		}
	}
	return 0, 0, fmt.Errorf("datagen: unknown dataset %q", name)
}

// Generate produces a scaled synthetic stand-in for a Table-1 dataset.
// scale multiplies both |V| and |E| (so |E|/|V| is preserved); scale 1.0
// reproduces the paper's sizes. Generation is deterministic per
// (name, scale).
func Generate(name string, scale float64) (*Dataset, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("datagen: scale must be positive, got %g", scale)
	}
	for _, d := range table1 {
		if d.name != name {
			continue
		}
		v := max(2, int(float64(d.v)*scale))
		e := max(1, int(float64(d.e)*scale))
		switch d.kind {
		case "social":
			g, err := SocialNetwork(SocialConfig{
				Name:              name,
				NumVertices:       v,
				NumEdges:          e,
				Seed:              seedFor(name),
				CommunityFraction: 0.25,
			})
			if err != nil {
				return nil, err
			}
			return &Dataset{Name: name, Kind: d.kind, Scale: scale, Graph: g}, nil
		case "bank":
			g, err := BankGraph(BankConfig{
				Name:         name,
				NumAccounts:  v,
				NumTransfers: e,
				Seed:         seedFor(name),
				RiskFraction: 0.02,
			})
			if err != nil {
				return nil, err
			}
			return &Dataset{Name: name, Kind: d.kind, Scale: scale, Graph: g}, nil
		case "financial":
			// FinBench SF10's vertex mix: mostly accounts and persons,
			// some loans and mediums.
			persons := max(1, v/4)
			accounts := max(2, v/2)
			loans := max(1, v/8)
			mediums := max(1, v-persons-accounts-loans)
			g, lay, err := FinancialGraph(FinConfig{
				Name:            name,
				NumPersons:      persons,
				NumAccounts:     accounts,
				NumLoans:        loans,
				NumMediums:      mediums,
				NumTransfers:    max(1, e*2/3),
				NumWithdraws:    max(1, e/6),
				Seed:            seedFor(name),
				BlockedFraction: 0.1,
			})
			if err != nil {
				return nil, err
			}
			return &Dataset{Name: name, Kind: d.kind, Scale: scale, Graph: g, Layout: lay}, nil
		}
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q", name)
}

// seedFor derives a stable per-dataset seed from the name.
func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
