package planner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func socialGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := datagen.SocialNetwork(datagen.SocialConfig{
		NumVertices: 500, NumEdges: 2000, Seed: 42, CommunityFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func triangle(kmax int) *pattern.Pattern {
	d := pattern.Determiner{KMin: 1, KMax: kmax, Dir: graph.Both, Type: pattern.Any, EdgeLabels: []string{"knows"}}
	return &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "a", Labels: []string{"Person", "SIGA"}},
			{Name: "b", Labels: []string{"Person", "SIGB"}},
			{Name: "c", Labels: []string{"Person", "SIGC"}},
		},
		Edges: []pattern.Edge{
			{Src: "a", Dst: "b", D: d},
			{Src: "b", Dst: "c", D: d},
			{Src: "a", Dst: "c", D: d},
		},
	}
}

// checkPlanInvariants verifies the structural invariants any valid plan
// must satisfy.
func checkPlanInvariants(t *testing.T, g *graph.Graph, pat *pattern.Pattern, p *Plan) {
	t.Helper()
	n := len(pat.Vertices)
	if len(p.Order) != n {
		t.Fatalf("Order has %d entries, want %d", len(p.Order), n)
	}
	seen := map[int]bool{}
	for pos, v := range p.Order {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("Order = %v is not a permutation", p.Order)
		}
		seen[v] = true
		if p.PosOf[v] != pos {
			t.Fatalf("PosOf[%d] = %d, want %d", v, p.PosOf[v], pos)
		}
	}
	if n < 2 {
		return
	}
	if len(p.Edges) != len(pat.Edges) {
		t.Fatalf("plan has %d edges, want %d", len(p.Edges), len(pat.Edges))
	}
	if p.Edges[0].EarlierPos != 0 || p.Edges[0].LaterPos != 1 {
		t.Fatalf("first planned edge joins %d-%d, want 0-1", p.Edges[0].EarlierPos, p.Edges[0].LaterPos)
	}
	coveredEdges := map[int]bool{}
	for _, pe := range p.Edges {
		if coveredEdges[pe.PatternEdge] {
			t.Fatalf("pattern edge %d planned twice", pe.PatternEdge)
		}
		coveredEdges[pe.PatternEdge] = true
		if pe.EarlierPos >= pe.LaterPos {
			t.Fatalf("edge positions not ordered: %d >= %d", pe.EarlierPos, pe.LaterPos)
		}
		// ExpandFrom must be the later endpoint, with the determiner
		// oriented accordingly.
		e := pat.Edges[pe.PatternEdge]
		s, d := pat.VertexIndex(e.Src), pat.VertexIndex(e.Dst)
		later := p.Order[pe.LaterPos]
		if pe.ExpandFrom != later {
			t.Fatalf("ExpandFrom = %d, later endpoint is %d", pe.ExpandFrom, later)
		}
		if later == d {
			if pe.D.Dir != e.D.Dir.Flip() {
				t.Fatalf("determiner not reversed for dst-side expansion")
			}
		} else if later == s {
			if pe.D.Dir != e.D.Dir {
				t.Fatalf("determiner flipped for src-side expansion")
			}
		} else {
			t.Fatalf("ExpandFrom %d is not an endpoint of pattern edge %d", pe.ExpandFrom, pe.PatternEdge)
		}
		if pe.EstPairs <= 0 {
			t.Fatalf("EstPairs = %f", pe.EstPairs)
		}
	}
	// Connectivity: every position ≥ 2 must have at least one planned
	// edge to an earlier position.
	for pos := 2; pos < n; pos++ {
		found := false
		for _, pe := range p.Edges {
			if pe.LaterPos == pos {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("position %d has no connecting edge", pos)
		}
	}
	// Candidates respect labels.
	for i, v := range pat.Vertices {
		p.Candidates[i].ForEach(func(x int) {
			for _, l := range v.Labels {
				if !g.HasLabel(graph.VertexID(x), l) {
					t.Fatalf("candidate %d of %s lacks label %s", x, v.Name, l)
				}
			}
		})
		if len(p.CandList[i]) != p.Candidates[i].PopCount() {
			t.Fatalf("CandList and Candidates disagree for %s", v.Name)
		}
	}
}

func TestTrianglePlan(t *testing.T) {
	g := socialGraph(t)
	pat := triangle(2)
	p, err := Build(g, pat)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, g, pat, p)
}

func TestSingleVertexPlan(t *testing.T) {
	g := socialGraph(t)
	pat := &pattern.Pattern{Vertices: []pattern.Vertex{{Name: "p", Labels: []string{"SIGA"}}}}
	p, err := Build(g, pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Order) != 1 || len(p.Edges) != 0 {
		t.Fatalf("single-vertex plan = %+v", p)
	}
	if p.Candidates[0].PopCount() == 0 {
		t.Fatal("no SIGA candidates")
	}
}

func TestPlannerPrefersSelectiveSeed(t *testing.T) {
	// p has a unique-id filter (1 candidate), q is everything. The seed
	// pair must be {p, q}, with the 1-candidate vertex placed SECOND:
	// position 1 is the side VExpand starts from (§5.2's
	// expand-from-the-smaller-side rule).
	g := socialGraph(t)
	d := pattern.Determiner{KMin: 1, KMax: 2, Dir: graph.Both, Type: pattern.Any, EdgeLabels: []string{"knows"}}
	pat := &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "q", Labels: []string{"Person"}},
			{Name: "p", PropEq: map[string]any{"id": int64(1005)}},
		},
		Edges: []pattern.Edge{{Src: "p", Dst: "q", D: d}},
	}
	p, err := Build(g, pat)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, g, pat, p)
	if p.Order[1] != 1 {
		t.Fatalf("expansion-side vertex is %d, want the selective one (1)", p.Order[1])
	}
}

func TestDisconnectedPatternRejected(t *testing.T) {
	g := socialGraph(t)
	d := pattern.Determiner{KMin: 1, KMax: 1, Dir: graph.Both, Type: pattern.Any, EdgeLabels: []string{"knows"}}
	pat := &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "a", Labels: []string{"SIGA"}},
			{Name: "b", Labels: []string{"SIGB"}},
			{Name: "c", Labels: []string{"SIGC"}},
			{Name: "d", Labels: []string{"SIGA"}},
		},
		Edges: []pattern.Edge{
			{Src: "a", Dst: "b", D: d},
			{Src: "c", Dst: "d", D: d},
		},
	}
	if _, err := Build(g, pat); err == nil {
		t.Fatal("disconnected pattern accepted")
	}
}

func TestInvalidPatternRejected(t *testing.T) {
	g := socialGraph(t)
	if _, err := Build(g, &pattern.Pattern{}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	pat := &pattern.Pattern{Vertices: []pattern.Vertex{{Name: "a", Labels: []string{"NoSuchLabel"}}}}
	if _, err := Build(g, pat); err == nil {
		t.Fatal("unknown label accepted")
	}
}

// Property: on random connected patterns over the social graph, plans
// always satisfy the invariants.
func TestQuickPlanInvariants(t *testing.T) {
	g := socialGraph(t)
	labels := [][]string{{"Person"}, {"SIGA"}, {"SIGB"}, {"SIGC"}, {"Person", "SIGA"}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		pat := &pattern.Pattern{}
		for i := 0; i < n; i++ {
			pat.Vertices = append(pat.Vertices, pattern.Vertex{
				Name:   string(rune('a' + i)),
				Labels: labels[rng.Intn(len(labels))],
			})
		}
		// Random spanning tree plus extra edges keeps it connected.
		mkDet := func() pattern.Determiner {
			return pattern.Determiner{
				KMin: 1, KMax: 1 + rng.Intn(3),
				Dir:        graph.Direction(rng.Intn(3)),
				Type:       pattern.PathType(rng.Intn(2)),
				EdgeLabels: []string{"knows"},
			}
		}
		for i := 1; i < n; i++ {
			j := rng.Intn(i)
			pat.Edges = append(pat.Edges, pattern.Edge{
				Src: pat.Vertices[j].Name, Dst: pat.Vertices[i].Name, D: mkDet(),
			})
		}
		for extra := rng.Intn(2); extra > 0; extra-- {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			dup := false
			for _, e := range pat.Edges {
				if (e.Src == pat.Vertices[i].Name && e.Dst == pat.Vertices[j].Name) ||
					(e.Src == pat.Vertices[j].Name && e.Dst == pat.Vertices[i].Name) {
					dup = true
				}
			}
			if dup {
				continue
			}
			pat.Edges = append(pat.Edges, pattern.Edge{
				Src: pat.Vertices[i].Name, Dst: pat.Vertices[j].Name, D: mkDet(),
			})
		}
		p, err := Build(g, pat)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		checkPlanInvariants(t, g, pat, p)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildOrdered(t *testing.T) {
	g := socialGraph(t)
	pat := triangle(2)
	// Force the reverse of a typical order; invariants must still hold.
	p, err := BuildOrdered(g, pat, []int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, g, pat, p)
	if p.Order[0] != 2 || p.Order[1] != 1 || p.Order[2] != 0 {
		t.Fatalf("Order = %v", p.Order)
	}

	if _, err := BuildOrdered(g, pat, nil); err == nil {
		t.Error("nil order accepted")
	}
	if _, err := BuildOrdered(g, pat, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := BuildOrdered(g, pat, []int{0, 0, 1}); err == nil {
		t.Error("non-permutation accepted")
	}

	// Disconnected forced order: a 4-vertex path a-b-c-d ordered so the
	// second position has no edge to the first.
	d := pattern.Determiner{KMin: 1, KMax: 1, Dir: graph.Both, Type: pattern.Any, EdgeLabels: []string{"knows"}}
	path := &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "a", Labels: []string{"Person"}},
			{Name: "b", Labels: []string{"Person"}},
			{Name: "c", Labels: []string{"Person"}},
			{Name: "d", Labels: []string{"Person"}},
		},
		Edges: []pattern.Edge{
			{Src: "a", Dst: "b", D: d},
			{Src: "b", Dst: "c", D: d},
			{Src: "c", Dst: "d", D: d},
		},
	}
	if _, err := BuildOrdered(g, path, []int{0, 3, 1, 2}); err == nil {
		t.Error("order whose first two vertices share no edge accepted")
	}
}
