package vslint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// ImportPath is the full import path (module path + relative dir).
	ImportPath string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset is the shared file set of the whole load.
	Fset *token.FileSet
	// Files are the parsed non-test files, build-constraint filtered.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Module is a loaded, type-checked Go module.
type Module struct {
	// Root is the absolute directory containing go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset is shared by every package (and by source-imported stdlib).
	Fset *token.FileSet
	// Pkgs lists all module packages in dependency (topological) order.
	Pkgs []*Package

	byPath map[string]*Package
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("vslint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// parsedPkg is a package after parsing, before type checking.
type parsedPkg struct {
	importPath string
	dir        string
	files      []*ast.File
	names      []string
	deps       []string // module-internal import paths
}

// LoadModule parses and type-checks every package of the module rooted at
// root. Test files (*_test.go) are excluded: the analyzers guard production
// code, and external test packages would complicate the import graph.
// Build constraints are honoured for the host platform via go/build.
//
// Dependencies outside the module are resolved by the stdlib source
// importer (honouring the repo's stdlib-only rule: no x/tools).
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("vslint: %w", err)
	}
	modPath := modulePath(gomod)
	if modPath == "" {
		return nil, fmt.Errorf("vslint: no module directive in %s/go.mod", root)
	}

	fset := token.NewFileSet()
	parsed := map[string]*parsedPkg{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata") {
			return filepath.SkipDir
		}
		pkg, err := parseDir(fset, root, modPath, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			parsed[pkg.importPath] = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}

	m := &Module{Root: root, Path: modPath, Fset: fset, byPath: map[string]*Package{}}
	imp := &moduleImporter{
		mod: m,
		src: importer.ForCompiler(fset, "source", nil),
	}
	for _, pp := range order {
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Implicits:  map[ast.Node]types.Object{},
		}
		tpkg, _ := conf.Check(pp.importPath, fset, pp.files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("vslint: type-checking %s: %w", pp.importPath, typeErrs[0])
		}
		p := &Package{
			ImportPath: pp.importPath,
			Dir:        pp.dir,
			Fset:       fset,
			Files:      pp.files,
			Types:      tpkg,
			Info:       info,
		}
		m.Pkgs = append(m.Pkgs, p)
		m.byPath[p.ImportPath] = p
	}
	return m, nil
}

// parseDir parses the buildable non-test files of one directory; it returns
// nil if the directory holds no buildable Go files.
func parseDir(fset *token.FileSet, root, modPath, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	pkg := &parsedPkg{importPath: importPath, dir: dir}
	depSet := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		// go/build applies //go:build constraints and GOOS/GOARCH file
		// suffixes for the host platform.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vslint: %w", err)
		}
		pkg.files = append(pkg.files, f)
		pkg.names = append(pkg.names, name)
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == modPath || strings.HasPrefix(path, modPath+"/") {
				depSet[path] = true
			}
		}
	}
	if len(pkg.files) == 0 {
		return nil, nil
	}
	for d := range depSet {
		pkg.deps = append(pkg.deps, d)
	}
	sort.Strings(pkg.deps)
	return pkg, nil
}

// topoSort orders packages so every package follows its module-internal
// dependencies.
func topoSort(pkgs map[string]*parsedPkg) ([]*parsedPkg, error) {
	const (
		white = iota
		gray
		black
	)
	state := map[string]int{}
	var order []*parsedPkg
	var visit func(path string) error
	visit = func(path string) error {
		pkg, ok := pkgs[path]
		if !ok {
			return nil // import of a module path not present (should not happen)
		}
		switch state[path] {
		case gray:
			return fmt.Errorf("vslint: import cycle through %s", path)
		case black:
			return nil
		}
		state[path] = gray
		for _, d := range pkg.deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, pkg)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the already-checked
// packages and everything else through the stdlib source importer.
type moduleImporter struct {
	mod *Module
	src types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.mod.Path || strings.HasPrefix(path, mi.mod.Path+"/") {
		if p, ok := mi.mod.byPath[path]; ok {
			return p.Types, nil
		}
		return nil, fmt.Errorf("vslint: internal package %s not loaded (cycle or missing dir)", path)
	}
	return mi.src.Import(path)
}

// Match resolves command-line package patterns ("./...", "./internal/foo",
// "./internal/...") against the module's packages. An empty pattern list
// means "./...".
func (m *Module) Match(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		matched := false
		for _, p := range m.Pkgs {
			rel := strings.TrimPrefix(strings.TrimPrefix(p.ImportPath, m.Path), "/")
			if rel == "" {
				rel = "."
			}
			var ok bool
			switch {
			case pat == "..." || pat == ".":
				ok = pat == "..." || rel == "."
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				ok = rel == prefix || strings.HasPrefix(rel, prefix+"/")
			default:
				ok = rel == pat || p.ImportPath == pat
			}
			if ok && !seen[p.ImportPath] {
				seen[p.ImportPath] = true
				out = append(out, p)
				matched = true
			} else if ok {
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("vslint: pattern %q matched no packages", pat)
		}
	}
	return out, nil
}
