package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// bruteForceMatch enumerates all matches of pat on g directly from the
// definitions: candidates per vertex, reachability per edge via walk/BFS
// oracles, injective binding.
func bruteForceMatch(t *testing.T, g *graph.Graph, pat *pattern.Pattern) [][]graph.VertexID {
	t.Helper()
	n := len(pat.Vertices)
	cands := make([][]graph.VertexID, n)
	for i, v := range pat.Vertices {
		bm, err := pattern.Candidates(g, v)
		if err != nil {
			t.Fatal(err)
		}
		bm.ForEach(func(x int) { cands[i] = append(cands[i], graph.VertexID(x)) })
	}
	// reach[e][u] = set of v with D(u, v).
	reach := make([]map[graph.VertexID]map[int]bool, len(pat.Edges))
	for ei, e := range pat.Edges {
		si := pat.VertexIndex(e.Src)
		reach[ei] = map[graph.VertexID]map[int]bool{}
		for _, u := range cands[si] {
			reach[ei][u] = reachOracle(g, u, e.D)
		}
	}
	var out [][]graph.VertexID
	tuple := make([]graph.VertexID, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]graph.VertexID(nil), tuple...))
			return
		}
		for _, v := range cands[i] {
			dup := false
			for j := 0; j < i; j++ {
				if tuple[j] == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			tuple[i] = v
			ok := true
			for ei, e := range pat.Edges {
				si, di := pat.VertexIndex(e.Src), pat.VertexIndex(e.Dst)
				if si > i || di > i {
					continue // not fully bound yet
				}
				if !reach[ei][tuple[si]][int(tuple[di])] {
					ok = false
					break
				}
			}
			if ok {
				rec(i + 1)
			}
		}
	}
	rec(0)
	return out
}

// reachOracle is the walk/shortest oracle shared with the other tests.
func reachOracle(g *graph.Graph, v graph.VertexID, d pattern.Determiner) map[int]bool {
	sets, err := g.EdgeSets(d.EdgeLabels)
	if err != nil {
		panic(err)
	}
	out := map[int]bool{}
	cur := map[int]bool{int(v): true}
	visited := map[int]bool{int(v): true}
	if d.KMin == 0 {
		out[int(v)] = true
	}
	kmax := d.KMax
	if kmax == pattern.Unbounded {
		kmax = g.NumVertices()
	}
	for step := 1; step <= kmax; step++ {
		next := map[int]bool{}
		for u := range cur {
			for _, es := range sets {
				for _, w := range es.Neighbors(graph.VertexID(u), d.Dir) {
					next[int(w)] = true
				}
			}
		}
		if d.Type == pattern.Shortest {
			for u := range visited {
				delete(next, u)
			}
			for u := range next {
				visited[u] = true
			}
		}
		if step >= d.KMin {
			for u := range next {
				out[u] = true
			}
		}
		if len(next) == 0 {
			break
		}
		cur = next
	}
	return out
}

func sortTuples(ts [][]graph.VertexID) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

// Property: Match agrees with brute force on random graphs and random
// connected patterns of 2–4 vertices with mixed determiners.
func TestQuickMatchAgainstBruteForce(t *testing.T) {
	labels := []string{"L0", "L1", "L2", "L3"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nV := 15 + rng.Intn(25)
		b := graph.NewBuilder(nV)
		for v := 0; v < nV; v++ {
			// Round-robin base labels guarantee every label exists (an
			// entirely-unused label is a query error by design), plus a
			// random extra label on some vertices.
			b.SetLabel(graph.VertexID(v), labels[v%len(labels)])
			if rng.Intn(3) == 0 {
				b.SetLabel(graph.VertexID(v), labels[rng.Intn(len(labels))])
			}
		}
		// Two edge labels, both guaranteed present.
		b.AddEdge("e1", 0, uint32(1%nV))
		b.AddEdge("e2", uint32(1%nV), 0)
		m := rng.Intn(3 * nV)
		for i := 0; i < m; i++ {
			label := []string{"e1", "e2"}[rng.Intn(2)]
			b.AddEdge(label, uint32(rng.Intn(nV)), uint32(rng.Intn(nV)))
		}
		g := b.MustBuild()

		nP := 2 + rng.Intn(3)
		pat := &pattern.Pattern{}
		for i := 0; i < nP; i++ {
			pat.Vertices = append(pat.Vertices, pattern.Vertex{
				Name:   string(rune('a' + i)),
				Labels: []string{labels[rng.Intn(len(labels))]},
			})
		}
		mkDet := func() pattern.Determiner {
			d := pattern.Determiner{
				KMin:       1 + rng.Intn(2),
				Dir:        graph.Direction(rng.Intn(3)),
				Type:       pattern.PathType(rng.Intn(2)),
				EdgeLabels: [][]string{{"e1"}, {"e2"}, {"e1", "e2"}}[rng.Intn(3)],
			}
			d.KMax = d.KMin + rng.Intn(3)
			return d
		}
		// Spanning tree + occasional extra edge.
		for i := 1; i < nP; i++ {
			j := rng.Intn(i)
			pat.Edges = append(pat.Edges, pattern.Edge{
				Src: pat.Vertices[j].Name, Dst: pat.Vertices[i].Name, D: mkDet(),
			})
		}
		if nP > 2 && rng.Intn(2) == 0 {
			pat.Edges = append(pat.Edges, pattern.Edge{
				Src: pat.Vertices[0].Name, Dst: pat.Vertices[nP-1].Name, D: mkDet(),
			})
		}

		eng := New(g, Options{})
		res, err := eng.Match(pat, MatchOptions{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		want := bruteForceMatch(t, g, pat)
		got := res.Tuples
		sortTuples(got)
		sortTuples(want)
		if len(got) == 0 && len(want) == 0 {
			// continue to count check
		} else if !reflect.DeepEqual(got, want) {
			t.Logf("seed %d: got %d tuples, want %d", seed, len(got), len(want))
			return false
		}
		cres, err := eng.Match(pat, MatchOptions{CountOnly: true})
		if err != nil {
			return false
		}
		return cres.Count == int64(len(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
