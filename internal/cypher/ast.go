package cypher

import (
	"fmt"

	"repro/internal/pattern"
)

// Query is a parsed query.
type Query struct {
	// Raw is the original query text as given to Parse — the registry's
	// display string for SHOW QUERIES and /debug/queries. Empty for
	// programmatically constructed Query values.
	Raw string
	// Profile marks a `PROFILE <query>`: execute and attach the
	// per-operator span tree to the result.
	Profile bool
	// Explain marks an `EXPLAIN <query>`: render the plan without
	// executing (Result.Plan).
	Explain bool
	// Analyze marks `EXPLAIN ANALYZE <query>`: execute with tracing
	// forced on and attach the estimate-vs-actual operator table
	// (Result.Analysis). Only valid with Explain.
	Analyze bool
	// Unwind, when present, iterates a list parameter binding Alias per
	// iteration (Case 5's UNWIND $person_ids AS pid).
	Unwind *Unwind
	// Parts are the comma- and clause-separated pattern parts of every
	// MATCH (single-MATCH commas and repeated MATCH clauses are
	// equivalent here: walk semantics has no relationship-uniqueness rule
	// to scope, §2.2).
	Parts []*PatternPart
	// Where lists AND-ed predicates.
	Where []Predicate
	// Return lists the projection items.
	Return []ReturnItem
	// OrderBy lists sort keys referencing return aliases or variables.
	OrderBy []OrderKey
	// Limit caps rows; 0 = unlimited.
	Limit int
}

// Unwind is UNWIND $param AS alias.
type Unwind struct {
	Param string
	Alias string
}

// PatternPart is one node-rel-node-… chain, optionally a named
// shortestPath.
type PatternPart struct {
	// PathVar names the path when the part was `p = …`.
	PathVar string
	// Shortest marks `shortestPath(…)`.
	Shortest bool
	Nodes    []*NodePattern
	Rels     []*RelPattern // len(Rels) == len(Nodes)-1
}

// NodePattern is `(v:Label1:Label2 {prop: value})`.
type NodePattern struct {
	Var    string
	Labels []string
	Props  map[string]Literal
}

// RelPattern is `-[v:t1|t2*min..max]->` in any direction combination.
type RelPattern struct {
	// Var names the relationship when written `[p:t*1..3]`; it can be
	// referenced by length(p).
	Var   string
	Types []string
	// Props constrains edge properties: `[:transfer {flagged: true}]`.
	Props map[string]Literal
	// KMin and KMax give the hop bounds; a fixed single hop is (1, 1);
	// `*` with no upper bound yields KMax == pattern.Unbounded.
	KMin, KMax int
	// ArrowLeft/ArrowRight record `<-…-` and `-…->`; neither set means
	// undirected.
	ArrowLeft, ArrowRight bool
}

// LiteralKind tags Literal.
type LiteralKind int

const (
	// LitInt is an integer literal.
	LitInt LiteralKind = iota
	// LitString is a string literal.
	LitString
	// LitBool is true/false.
	LitBool
	// LitParam is a $parameter reference resolved at execution.
	LitParam
)

// Literal is a literal or parameter reference.
type Literal struct {
	Kind  LiteralKind
	Int   int64
	Str   string
	Bool  bool
	Param string
}

// Resolve returns the literal's value, resolving parameters against params.
func (l Literal) Resolve(params map[string]any) (any, error) {
	switch l.Kind {
	case LitInt:
		return l.Int, nil
	case LitString:
		return l.Str, nil
	case LitBool:
		return l.Bool, nil
	case LitParam:
		v, ok := params[l.Param]
		if !ok {
			return nil, fmt.Errorf("cypher: missing parameter $%s", l.Param)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("cypher: bad literal kind %d", l.Kind)
	}
}

// PredicateKind tags Predicate.
type PredicateKind int

const (
	// PredHasLabel is `v:Label`, possibly negated (`NOT v:Label`).
	PredHasLabel PredicateKind = iota
	// PredPropEq is `v.prop = literal`.
	PredPropEq
)

// Predicate is one WHERE conjunct.
type Predicate struct {
	Kind  PredicateKind
	Var   string
	Label string
	Prop  string
	// Op is the comparison operator for PredPropEq predicates
	// (=, <>, <, <=, >, >=).
	Op      pattern.CmpOp
	Value   Literal
	Negated bool
}

// Expr is a projectable expression: a variable, a property access, or
// length(pathVar).
type Expr struct {
	Var      string
	Prop     string // empty = the vertex itself
	IsLength bool   // length(PathVar)
	PathVar  string
}

// String renders the expression for column naming.
func (e Expr) String() string {
	if e.IsLength {
		return "length(" + e.PathVar + ")"
	}
	if e.Prop != "" {
		return e.Var + "." + e.Prop
	}
	return e.Var
}

// ReturnItem is one projection: optionally aggregated, optionally aliased.
type ReturnItem struct {
	// Agg is "", "count", "sum", "min", "max", or "avg".
	Agg string
	// Distinct applies inside the aggregate (COUNT(DISTINCT …)) or, with
	// no aggregate, to the whole row set (RETURN DISTINCT …).
	Distinct bool
	Args     []Expr
	Alias    string
}

// Column returns the output column name.
func (r ReturnItem) Column() string {
	if r.Alias != "" {
		return r.Alias
	}
	if r.Agg != "" {
		s := r.Agg + "("
		if r.Distinct {
			s += "DISTINCT "
		}
		for i, a := range r.Args {
			if i > 0 {
				s += ","
			}
			s += a.String()
		}
		return s + ")"
	}
	return r.Args[0].String()
}

// OrderKey is one ORDER BY key, matched against output column names.
type OrderKey struct {
	Ref  string
	Desc bool
}

// validate performs structural checks shared by every execution path.
func (q *Query) validate() error {
	if len(q.Parts) == 0 {
		return fmt.Errorf("cypher: query has no MATCH clause")
	}
	if len(q.Return) == 0 {
		return fmt.Errorf("cypher: query has no RETURN items")
	}
	for _, p := range q.Parts {
		if len(p.Nodes) == 0 {
			return fmt.Errorf("cypher: empty pattern part")
		}
		if len(p.Rels) != len(p.Nodes)-1 {
			return fmt.Errorf("cypher: malformed pattern part")
		}
		for _, r := range p.Rels {
			if r.KMin < 0 || (r.KMax != pattern.Unbounded && r.KMax < r.KMin) {
				return fmt.Errorf("cypher: invalid hop bounds %d..%d", r.KMin, r.KMax)
			}
		}
	}
	return nil
}
