package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/graph"
	"repro/internal/vexpand"
)

// Fig9Row is one rung of the VExpand optimization ladder.
type Fig9Row struct {
	Kernel  vexpand.Kernel
	Time    time.Duration
	Speedup float64 // relative to the straw-man
}

// Fig9Ladder is the ablation order of Figure 9: each rung adds one §4.2
// optimization.
var Fig9Ladder = []vexpand.Kernel{
	vexpand.Strawman,
	vexpand.ColumnMajor,
	vexpand.SIMD,
	vexpand.Hilbert,
	vexpand.Prefetch,
}

// Fig9 regenerates Figure 9: a single VExpand (k_max = kmax, ANY,
// undirected) from a Table2Sources-proportional source set on the
// LDBC-SN-SF1000-scale graph, once per kernel rung. The paper's shape:
// each added optimization helps, ~20× total in C++/AVX-512 (smaller in Go;
// see DESIGN.md).
func Fig9(cfg Config, kmax int) ([]Fig9Row, error) {
	ds := newDatasets(cfg)
	d, err := ds.get("LDBC-SN-SF1000")
	if err != nil {
		return nil, err
	}
	g := d.Graph
	numSources := int(float64(Table2Sources) * cfg.scale())
	if numSources < 64 {
		numSources = 64
	}
	if numSources > g.NumVertices() {
		numSources = g.NumVertices()
	}
	sources := make([]graph.VertexID, numSources)
	for i := range sources {
		sources[i] = graph.VertexID(i)
	}
	det := knowsDet(kmax)

	// Warm-up (§6.2: "A warm-up query is executed before the performance
	// test"): build the Hilbert-ordered COO once so the one-time sort is
	// not charged to the first kernel that needs it.
	g.Edges("knows").COO(graph.Both)

	var rows []Fig9Row
	var strawman time.Duration
	var want int
	for i, k := range Fig9Ladder {
		start := time.Now()
		r, err := vexpand.Expand(g, sources, det, vexpand.Options{Kernel: k, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if i == 0 {
			strawman = elapsed
			want = r.PairCount()
		} else if r.PairCount() != want {
			return nil, fmt.Errorf("bench: kernel %v disagrees: %d pairs, want %d", k, r.PairCount(), want)
		}
		row := Fig9Row{Kernel: k, Time: elapsed}
		if elapsed > 0 {
			row.Speedup = float64(strawman) / float64(elapsed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig9 renders Figure 9's ladder.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	header(w, "Figure 9 — VExpand optimization ladder (speedup vs straw-man)")
	fmt.Fprintf(w, "%-16s %-14s %-10s\n", "Kernel", "Time", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-14s %8.2fx\n", r.Kernel, fmtDur(r.Time), r.Speedup)
	}
}
