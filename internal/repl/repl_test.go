package repl

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/engine"
)

func testEngine(t testing.TB) *engine.Engine {
	t.Helper()
	g, err := datagen.SocialNetwork(datagen.SocialConfig{
		NumVertices: 150, NumEdges: 500, Seed: 4, CommunityFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return engine.New(g, engine.Options{})
}

// session runs the REPL over scripted input and returns the transcript.
func session(t *testing.T, input string) string {
	t.Helper()
	var out strings.Builder
	r := New(testEngine(t), strings.NewReader(input), &out)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestQueryExecution(t *testing.T) {
	out := session(t, "MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q);\n")
	if !strings.Contains(out, "count(DISTINCT p,q)") {
		t.Fatalf("missing column header:\n%s", out)
	}
	if !strings.Contains(out, "1 row(s)") {
		t.Fatalf("missing row count:\n%s", out)
	}
}

func TestMultiLineQuery(t *testing.T) {
	out := session(t, "MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB)\nRETURN COUNT(DISTINCT p,q);\n")
	if !strings.Contains(out, "...> ") {
		t.Fatalf("missing continuation prompt:\n%s", out)
	}
	if !strings.Contains(out, "1 row(s)") {
		t.Fatalf("query did not execute:\n%s", out)
	}
}

func TestTrailingQueryWithoutSemicolonRunsAtEOF(t *testing.T) {
	out := session(t, "MATCH (p:SIGA)-[:knows]-(q:SIGB) RETURN COUNT(DISTINCT p,q)")
	if !strings.Contains(out, "1 row(s)") {
		t.Fatalf("EOF-terminated query not executed:\n%s", out)
	}
}

func TestCommands(t *testing.T) {
	out := session(t, "\\help\n\\stats\n\\timing on\nMATCH (p:SIGA)-[:knows]-(q:SIGB) RETURN COUNT(DISTINCT p,q);\n\\timing off\n\\nope\n\\quit\nMATCH never runs;\n")
	for _, want := range []string{
		"commands:", "|V| = 150", "[:knows] 500", "timing on", "scan ", "timing off",
		"unknown command \\nope", "bye",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "never runs") {
		t.Error("input after \\quit was processed")
	}
}

func TestExplainCommand(t *testing.T) {
	out := session(t, "\\explain MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p,q)\n")
	if !strings.Contains(out, "Join order") {
		t.Fatalf("missing plan:\n%s", out)
	}
	out = session(t, "\\explain MATCH nope\n")
	if !strings.Contains(out, "error:") {
		t.Fatalf("missing parse error:\n%s", out)
	}
}

func TestQueryErrorsAreNotFatal(t *testing.T) {
	out := session(t, "MATCH broken;\nMATCH (p:SIGA)-[:knows]-(q:SIGB) RETURN COUNT(DISTINCT p,q);\n")
	if !strings.Contains(out, "error:") {
		t.Fatalf("missing error:\n%s", out)
	}
	if !strings.Contains(out, "1 row(s)") {
		t.Fatalf("recovery query did not run:\n%s", out)
	}
}

func TestTimingToggleValidation(t *testing.T) {
	out := session(t, "\\timing sideways\n")
	if !strings.Contains(out, `usage: \timing`) {
		t.Fatalf("missing usage:\n%s", out)
	}
}

func TestTablePrintingAlignment(t *testing.T) {
	out := session(t, "MATCH (p:SIGA)-[:knows*1..2]-(q:SIGB) RETURN COUNT(DISTINCT p) AS c, q ORDER BY c DESC LIMIT 3;\n")
	if !strings.Contains(out, "c ") || !strings.Contains(out, "--") {
		t.Fatalf("missing table formatting:\n%s", out)
	}
}
