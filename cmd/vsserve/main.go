// Command vsserve serves a stored graph as a read-only HTTP query service.
//
// Usage:
//
//	vsserve -data ./data/lastfm -addr :7474
//	curl -s localhost:7474/stats
//	curl -s localhost:7474/query -d '{"query":"MATCH (p:SIGA)-[:knows*..3]-(q:SIGA) RETURN COUNT(DISTINCT p,q)"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsserve: ")
	var (
		data    = flag.String("data", "", "graph directory written by vsgen (required)")
		addr    = flag.String("addr", ":7474", "listen address")
		workers = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := storage.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	eng := engine.New(g, engine.Options{Workers: *workers})
	fmt.Printf("serving %s (|V|=%d |E|=%d) on %s\n", *data, g.NumVertices(), g.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(eng)))
}
