package datagen

import (
	"testing"

	"repro/internal/graph"
)

func TestSocialNetworkShape(t *testing.T) {
	cfg := SocialConfig{Name: "test", NumVertices: 2000, NumEdges: 8000, Seed: 1, CommunityFraction: 0.3}
	g, err := SocialNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 || g.NumEdges() != 8000 {
		t.Fatalf("size = %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.Label("Person").PopCount() != 2000 {
		t.Fatal("not every vertex is a Person")
	}
	// Communities cover roughly the requested fraction.
	total := 0
	for _, c := range Communities {
		bm := g.Label(c)
		if bm == nil {
			t.Fatalf("community %s missing", c)
		}
		total += bm.PopCount()
	}
	if total < 400 || total > 800 {
		t.Fatalf("community members = %d, want ≈600", total)
	}
	// Heavy tail: max degree far above average.
	knows := g.Edges("knows")
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := knows.Degree(graph.VertexID(v), graph.Both); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(maxDeg) < 5*avg {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", maxDeg, avg)
	}
	// No self loops.
	for i := 0; i < knows.Len(); i++ {
		if s, d := knows.Edge(i); s == d {
			t.Fatalf("self loop at edge %d", i)
		}
	}
	// id property present and indexed.
	if v, ok := g.FindByInt64("id", 1005); !ok || v != 5 {
		t.Fatalf("FindByInt64(1005) = %d,%v", v, ok)
	}
}

func TestSocialNetworkDeterminism(t *testing.T) {
	cfg := SocialConfig{NumVertices: 300, NumEdges: 900, Seed: 7, CommunityFraction: 0.2}
	g1, err1 := SocialNetwork(cfg)
	g2, err2 := SocialNetwork(cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	e1, e2 := g1.Edges("knows"), g2.Edges("knows")
	for i := 0; i < e1.Len(); i++ {
		s1, d1 := e1.Edge(i)
		s2, d2 := e2.Edge(i)
		if s1 != s2 || d1 != d2 {
			t.Fatalf("edge %d differs: (%d,%d) vs (%d,%d)", i, s1, d1, s2, d2)
		}
	}
	cfg.Seed = 8
	g3, _ := SocialNetwork(cfg)
	e3 := g3.Edges("knows")
	same := true
	for i := 0; i < e1.Len(); i++ {
		s1, d1 := e1.Edge(i)
		s3, d3 := e3.Edge(i)
		if s1 != s3 || d1 != d3 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical edges")
	}
}

func TestSocialNetworkErrors(t *testing.T) {
	if _, err := SocialNetwork(SocialConfig{NumVertices: 1, NumEdges: 5}); err == nil {
		t.Error("1 vertex accepted")
	}
	if _, err := SocialNetwork(SocialConfig{NumVertices: 10, NumEdges: -1}); err == nil {
		t.Error("negative edges accepted")
	}
}

func TestBankGraph(t *testing.T) {
	g, err := BankGraph(BankConfig{NumAccounts: 1000, NumTransfers: 3000, Seed: 3, RiskFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 || g.NumEdges() != 3000 {
		t.Fatalf("size = %d/%d", g.NumVertices(), g.NumEdges())
	}
	if g.Label("Account").PopCount() != 1000 {
		t.Fatal("not every vertex is an Account")
	}
	risk := g.Label("RISKA").PopCount()
	if risk < 20 || risk > 100 {
		t.Fatalf("RISKA count = %d, want ≈50", risk)
	}
	tr := g.Edges("transfer")
	for i := 0; i < tr.Len(); i++ {
		if s, d := tr.Edge(i); s == d {
			t.Fatalf("self transfer at %d", i)
		}
	}
	if _, err := BankGraph(BankConfig{NumAccounts: 0}); err == nil {
		t.Error("empty bank accepted")
	}
}

func TestFinancialGraphSchema(t *testing.T) {
	cfg := FinConfig{
		NumPersons: 100, NumAccounts: 400, NumLoans: 50, NumMediums: 80,
		NumTransfers: 2000, NumWithdraws: 300, Seed: 5, BlockedFraction: 0.2,
	}
	g, lay, err := FinancialGraph(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 630 {
		t.Fatalf("NumVertices = %d, want 630", g.NumVertices())
	}
	wantLabels := map[string]int{"Person": 100, "Account": 400, "Loan": 50, "Medium": 80}
	for l, want := range wantLabels {
		if got := g.Label(l).PopCount(); got != want {
			t.Errorf("label %s count = %d, want %d", l, got, want)
		}
	}
	// Layout ranges line up with labels.
	if !g.HasLabel(lay.AccountLo, "Account") || !g.HasLabel(lay.MediumHi-1, "Medium") {
		t.Fatal("layout ranges disagree with labels")
	}
	// Every account owned by exactly one person.
	own := g.Edges("own")
	if own.Len() != 400 {
		t.Fatalf("own edges = %d, want 400", own.Len())
	}
	for a := lay.AccountLo; a < lay.AccountHi; a++ {
		owners := own.Neighbors(a, graph.Reverse)
		if len(owners) != 1 {
			t.Fatalf("account %d has %d owners", a, len(owners))
		}
		if !g.HasLabel(owners[0], "Person") {
			t.Fatalf("owner of %d is not a Person", a)
		}
	}
	// Every loan deposits into exactly one account.
	dep := g.Edges("deposit")
	for l := lay.LoanLo; l < lay.LoanHi; l++ {
		if got := len(dep.Neighbors(l, graph.Forward)); got != 1 {
			t.Fatalf("loan %d deposits %d times", l, got)
		}
	}
	// Mediums sign into 1..3 accounts.
	si := g.Edges("signIn")
	for m := lay.MediumLo; m < lay.MediumHi; m++ {
		k := len(si.Neighbors(m, graph.Forward))
		if k < 1 || k > 3 {
			t.Fatalf("medium %d signs into %d accounts", m, k)
		}
	}
	// Transfers stay within accounts.
	tr := g.Edges("transfer")
	for i := 0; i < tr.Len(); i++ {
		s, d := tr.Edge(i)
		if !g.HasLabel(s, "Account") || !g.HasLabel(d, "Account") {
			t.Fatalf("transfer %d touches a non-account", i)
		}
	}
	// Blocked mediums exist but are a strict subset.
	blocked, ok := g.Prop("isBlocked").(graph.BoolColumn)
	if !ok {
		t.Fatal("isBlocked column missing")
	}
	nBlocked := 0
	for m := lay.MediumLo; m < lay.MediumHi; m++ {
		if blocked[m] {
			nBlocked++
		}
	}
	if nBlocked == 0 || nBlocked == 80 {
		t.Fatalf("blocked mediums = %d, want strict subset of 80", nBlocked)
	}
	// Loans have positive balances.
	bal := g.Prop("balance").(graph.Float64Column)
	for l := lay.LoanLo; l < lay.LoanHi; l++ {
		if bal[l] <= 0 {
			t.Fatalf("loan %d has balance %f", l, bal[l])
		}
	}
	if _, _, err := FinancialGraph(FinConfig{}); err == nil {
		t.Error("empty financial config accepted")
	}
}

func TestGeneratePresets(t *testing.T) {
	for _, name := range Table1Names() {
		v, e, err := Table1Size(name)
		if err != nil {
			t.Fatal(err)
		}
		// Tiny scale so even Twitter2010 generates instantly.
		scale := 2000.0 / float64(v)
		ds, err := Generate(name, scale)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		g := ds.Graph
		wantV := int(float64(v) * scale)
		if diff := g.NumVertices() - wantV; diff < -1 || diff > 1 {
			t.Errorf("%s: |V| = %d, want ≈%d", name, g.NumVertices(), wantV)
		}
		// |E|/|V| ratio roughly preserved (within 2×; the financial
		// generator adds structural edges).
		gotRatio := float64(g.NumEdges()) / float64(g.NumVertices())
		wantRatio := float64(e) / float64(v)
		if gotRatio < wantRatio/2 || gotRatio > wantRatio*2 {
			t.Errorf("%s: |E|/|V| = %.2f, want ≈%.2f", name, gotRatio, wantRatio)
		}
		if ds.Kind == "financial" && ds.Layout == nil {
			t.Errorf("%s: missing layout", name)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("NoSuchDataset", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := Generate("LastFM", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, _, err := Table1Size("NoSuchDataset"); err == nil {
		t.Error("unknown dataset size accepted")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	d1, err1 := Generate("LastFM", 0.1)
	d2, err2 := Generate("LastFM", 0.1)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	e1, e2 := d1.Graph.Edges("knows"), d2.Graph.Edges("knows")
	if e1.Len() != e2.Len() {
		t.Fatal("edge counts differ")
	}
	for i := 0; i < e1.Len(); i++ {
		s1, t1 := e1.Edge(i)
		s2, t2 := e2.Edge(i)
		if s1 != s2 || t1 != t2 {
			t.Fatalf("edge %d differs", i)
		}
	}
}
