package vslint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc flags allocation and boxing constructs inside functions
// annotated with a //vs:hotpath doc-comment line. The annotated functions
// are VertexSurge's measured kernels (VExpand's or_column loops,
// MIntersect's intersec_col, the stacked-column primitives); one stray
// allocation or interface conversion there changes what Figure 9 measures.
var HotpathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc:  "flag allocations, append growth, closures, and interface conversions in //vs:hotpath functions",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, hotpathDirective) {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	var sig *types.Signature
	if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n)
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure (func literal) allocates in hot path")
		case *ast.CompositeLit:
			p.Reportf(n.Pos(), "composite literal allocates in hot path")
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "goroutine launch in hot path")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := p.typeOf(n); t != nil && isStringType(t) {
					p.Reportf(n.Pos(), "string concatenation allocates in hot path")
				}
			}
		case *ast.AssignStmt:
			checkHotAssign(p, n)
		case *ast.ValueSpec:
			checkHotValueSpec(p, n)
		case *ast.ReturnStmt:
			checkHotReturn(p, sig, n)
		}
		return true
	})
}

// checkHotCall flags allocating builtins, allocating conversions, and
// implicit concrete-to-interface conversions at call boundaries.
func checkHotCall(p *Pass, call *ast.CallExpr) {
	// Conversion T(x): flag boxing and string<->slice copies.
	if tv, ok := p.Info.Types[unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		src := p.typeOf(call.Args[0])
		if src == nil {
			return
		}
		switch {
		case types.IsInterface(dst) && !types.IsInterface(src) && !isUntypedNil(p, call.Args[0]):
			p.Reportf(call.Pos(), "conversion of %s to interface %s allocates in hot path", src, dst)
		case isStringType(dst) && isByteOrRuneSlice(src),
			isByteOrRuneSlice(dst) && isStringType(src):
			p.Reportf(call.Pos(), "string/slice conversion %s -> %s copies in hot path", src, dst)
		}
		return
	}

	// Allocating builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				p.Reportf(call.Pos(), "make allocates in hot path")
			case "new":
				p.Reportf(call.Pos(), "new allocates in hot path")
			case "append":
				p.Reportf(call.Pos(), "append may grow its backing array in hot path")
			}
			return
		}
	}

	// Implicit interface conversions of call arguments.
	t := p.typeOf(call.Fun)
	if t == nil {
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := p.typeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(p, arg) {
			continue
		}
		p.Reportf(arg.Pos(), "implicit conversion of %s to interface parameter allocates in hot path", at)
	}
}

// checkHotAssign flags concrete-to-interface conversions on plain
// assignments (x = v where x has interface type).
func checkHotAssign(p *Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return // := never converts; multi-value rhs handled at the call site
	}
	for i, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt := p.typeOf(lhs)
		rt := p.typeOf(as.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if types.IsInterface(lt) && !types.IsInterface(rt) && !isUntypedNil(p, as.Rhs[i]) {
			p.Reportf(as.Rhs[i].Pos(), "assignment converts %s to interface %s in hot path", rt, lt)
		}
	}
}

// checkHotValueSpec flags var declarations with an explicit interface type
// initialized from concrete values.
func checkHotValueSpec(p *Pass, vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	lt := p.typeOf(vs.Type)
	if lt == nil || !types.IsInterface(lt) {
		return
	}
	for _, v := range vs.Values {
		rt := p.typeOf(v)
		if rt != nil && !types.IsInterface(rt) && !isUntypedNil(p, v) {
			p.Reportf(v.Pos(), "var declaration converts %s to interface %s in hot path", rt, lt)
		}
	}
}

// checkHotReturn flags concrete values returned through interface results.
func checkHotReturn(p *Pass, sig *types.Signature, ret *ast.ReturnStmt) {
	if sig == nil {
		return
	}
	results := sig.Results()
	if results.Len() != len(ret.Results) {
		return // bare return or tuple-forwarding call
	}
	for i, r := range ret.Results {
		rt := p.typeOf(r)
		if rt == nil {
			continue
		}
		lt := results.At(i).Type()
		if types.IsInterface(lt) && !types.IsInterface(rt) && !isUntypedNil(p, r) {
			p.Reportf(r.Pos(), "return converts %s to interface %s in hot path", rt, lt)
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

func isUntypedNil(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.IsNil()
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}
