package cypher

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/telemetry"
)

// TestKillCancelsRunningQuery drives the full KILL path: a long chain
// expansion is registered, shows live pair progress, is killed by registry
// id mid-expand, unwinds with context.Canceled within the kernel's
// cancellation poll interval, and lands in history as "killed".
func TestKillCancelsRunningQuery(t *testing.T) {
	// A directed chain forces KMax sequential BFS steps with a frontier of
	// one vertex — long wall-clock, tiny memory, per-step progress.
	const n = 1 << 18
	b := graph.NewBuilder(n)
	b.SetLabel(0, "Start")
	src := make([]uint32, n-1)
	dst := make([]uint32, n-1)
	for i := range src {
		src[i] = uint32(i)
		dst[i] = uint32(i + 1)
	}
	b.AddEdges("next", src, dst)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(g, engine.Options{})
	q, err := Parse(fmt.Sprintf(
		`MATCH (a:Start)-[:next*1..%d]->(c) RETURN COUNT(DISTINCT a,c)`, n))
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		_, rerr := RunContext(context.Background(), eng, q, nil)
		errc <- rerr
	}()

	// Wait until the registry shows our query executing with non-zero pair
	// progress — proof the live counters are fed mid-expand.
	var id uint64
	deadline := time.Now().Add(15 * time.Second)
poll:
	for {
		select {
		case rerr := <-errc:
			t.Fatalf("query finished before it could be killed (err=%v); chain too short for this machine", rerr)
		default:
		}
		active, _ := telemetry.DefaultQueries.Snapshot()
		for _, a := range active {
			if strings.Contains(a.Query, ":next*") && a.Progress.Pairs > 0 {
				id = a.ID
				break poll
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in the registry with pair progress")
		}
		time.Sleep(time.Millisecond)
	}

	if !telemetry.DefaultQueries.Kill(id) {
		t.Fatalf("Kill(%d) = false for a running query", id)
	}
	select {
	case rerr := <-errc:
		if !errors.Is(rerr, context.Canceled) {
			t.Fatalf("killed query returned %v, want context.Canceled", rerr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not unwind within 5s of KILL")
	}

	_, history := telemetry.DefaultQueries.Snapshot()
	for _, h := range history {
		if h.ID == id {
			if h.Status != "killed" {
				t.Fatalf("history status = %q, want killed (record %+v)", h.Status, h)
			}
			return
		}
	}
	t.Fatalf("killed query %d not recorded in history", id)
}
