// Package datagen generates the evaluation datasets of the VertexSurge
// paper (Table 1) as deterministic synthetic graphs.
//
// The paper evaluates on real downloads (LastFM, Epinions, LiveJournal,
// Twitter2010, Rabobank) and LDBC generators (SNB, FinBench), none of which
// are available offline. Each generator here reproduces the *schema* and
// *shape* the corresponding dataset contributes to the evaluation: power-law
// social networks with community labels, a bank transfer graph with
// risk-tagged accounts, and a FinBench-schema financial graph (Person /
// Account / Loan / Medium vertices with own / transfer / withdraw / deposit
// / signIn edges). Every generator is seeded and fully deterministic.
// |V| and |E| match Table 1 scaled by a configurable factor (see DESIGN.md,
// "Substitutions").
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Communities are the community labels used by the social-network cases
// (the paper's :SIGA, :SIGB, :SIGC).
var Communities = []string{"SIGA", "SIGB", "SIGC"}

// SocialConfig parameterizes a social-network generator.
type SocialConfig struct {
	// Name tags the dataset (e.g. "LastFM").
	Name string
	// NumVertices and NumEdges size the graph.
	NumVertices int
	NumEdges    int
	// Seed makes generation deterministic.
	Seed int64
	// CommunityFraction is the fraction of persons carrying one of the
	// three community labels (≈0.25 gives the "stringent filter"
	// selectivity of Figure 2b's ~2000 candidates on LastFM-scale data).
	CommunityFraction float64
}

// SocialNetwork generates an undirected power-law "knows" graph via
// preferential attachment. Every vertex is a :Person; a CommunityFraction
// subset carries one of :SIGA/:SIGB/:SIGC. Vertices get an int64 "id"
// property (vertex index + 1000) and a "name" string property.
//
// knows edges are stored once in arbitrary orientation; queries traverse
// them with Direction Both, as the paper's social cases do.
func SocialNetwork(cfg SocialConfig) (*graph.Graph, error) {
	if cfg.NumVertices <= 1 {
		return nil, fmt.Errorf("datagen: need at least 2 vertices, got %d", cfg.NumVertices)
	}
	if cfg.NumEdges < 0 {
		return nil, fmt.Errorf("datagen: negative edge count")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumVertices
	b := graph.NewBuilder(n)

	ids := make(graph.Int64Column, n)
	names := make(graph.StringColumn, n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), "Person")
		ids[v] = int64(v) + 1000
		names[v] = fmt.Sprintf("person-%d", v)
		if rng.Float64() < cfg.CommunityFraction {
			b.SetLabel(graph.VertexID(v), Communities[rng.Intn(len(Communities))])
		}
	}
	b.SetProp("id", ids)
	b.SetProp("name", names)

	// Preferential attachment: endpoints are drawn from the pool of
	// previous edge endpoints with probability ~2/3, uniformly otherwise,
	// yielding a heavy-tailed degree distribution like the real networks.
	// knows is a simple graph (no parallel friendships, like LDBC SNB):
	// duplicate undirected pairs redraw, with a cap for dense requests.
	// Requests beyond the complete graph clamp to it.
	if maxEdges := n * (n - 1) / 2; cfg.NumEdges > maxEdges {
		cfg.NumEdges = maxEdges
	}
	pool := make([]uint32, 0, 2*cfg.NumEdges)
	seen := make(map[uint64]bool, cfg.NumEdges)
	pick := func() uint32 {
		if len(pool) > 0 && rng.Float64() < 0.66 {
			return pool[rng.Intn(len(pool))]
		}
		return uint32(rng.Intn(n))
	}
	for i := 0; i < cfg.NumEdges; i++ {
		var s, d uint32
		for attempt := 0; ; attempt++ {
			s = pick()
			d = pick()
			for d == s {
				d = uint32(rng.Intn(n))
			}
			lo, hi := s, d
			if lo > hi {
				lo, hi = hi, lo
			}
			key := uint64(lo)<<32 | uint64(hi)
			if !seen[key] {
				seen[key] = true
				break
			}
			if attempt > 200 {
				return nil, fmt.Errorf("datagen: cannot place %d simple edges on %d vertices", cfg.NumEdges, n)
			}
		}
		b.AddEdge("knows", s, d)
		pool = append(pool, s, d)
	}
	return b.Build()
}

// BankConfig parameterizes the bank-transfer generator (Rabobank-like).
type BankConfig struct {
	Name         string
	NumAccounts  int
	NumTransfers int
	Seed         int64
	// RiskFraction is the fraction of accounts labeled :RISKA (the
	// paper "assigned random risk tags to some specified accounts").
	RiskFraction float64
}

// BankGraph generates a directed transfer graph: every vertex is an
// :Account with an int64 "id"; a RiskFraction subset carries :RISKA.
// transfer edges follow a preferential-attachment-out / uniform-in mix,
// matching the hub-dominated shape of real transaction networks.
func BankGraph(cfg BankConfig) (*graph.Graph, error) {
	if cfg.NumAccounts <= 1 {
		return nil, fmt.Errorf("datagen: need at least 2 accounts, got %d", cfg.NumAccounts)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumAccounts
	b := graph.NewBuilder(n)
	ids := make(graph.Int64Column, n)
	for v := 0; v < n; v++ {
		b.SetLabel(graph.VertexID(v), "Account")
		ids[v] = int64(v) + 1000
		if rng.Float64() < cfg.RiskFraction {
			b.SetLabel(graph.VertexID(v), "RISKA")
		}
	}
	b.SetProp("id", ids)

	pool := make([]uint32, 0, cfg.NumTransfers)
	for i := 0; i < cfg.NumTransfers; i++ {
		var s uint32
		if len(pool) > 0 && rng.Float64() < 0.5 {
			s = pool[rng.Intn(len(pool))]
		} else {
			s = uint32(rng.Intn(n))
		}
		d := uint32(rng.Intn(n))
		for d == s {
			d = uint32(rng.Intn(n))
		}
		b.AddEdge("transfer", s, d)
		pool = append(pool, d)
	}
	return b.Build()
}

// FinConfig parameterizes the FinBench-schema financial graph generator.
type FinConfig struct {
	Name        string
	NumPersons  int
	NumAccounts int
	NumLoans    int
	NumMediums  int
	// Edge counts.
	NumTransfers int
	NumWithdraws int
	Seed         int64
	// BlockedFraction of mediums have isBlocked = true (TCR1's filter).
	BlockedFraction float64
}

// FinLayout reports the vertex-ID ranges of a financial graph: persons
// first, then accounts, loans, mediums.
type FinLayout struct {
	PersonLo, PersonHi   graph.VertexID // [lo, hi)
	AccountLo, AccountHi graph.VertexID
	LoanLo, LoanHi       graph.VertexID
	MediumLo, MediumHi   graph.VertexID
}

// FinancialGraph generates an LDBC-FinBench-schema graph:
//
//   - vertices: :Person, :Account, :Loan, :Medium (dense ID ranges in that
//     order, see FinLayout);
//   - edges: own (Person→Account, each account owned by exactly one
//     person), transfer (Account→Account), withdraw (Account→Account),
//     deposit (Loan→Account, each loan deposits to exactly one account),
//     signIn (Medium→Account, each medium signs into 1–3 accounts);
//   - properties: "id" (int64, globally unique), "isBlocked" (bool, only
//     meaningful on mediums), "balance" and "loanAmount" (float64, on
//     loans).
func FinancialGraph(cfg FinConfig) (*graph.Graph, *FinLayout, error) {
	if cfg.NumPersons < 1 || cfg.NumAccounts < 2 || cfg.NumLoans < 1 || cfg.NumMediums < 1 {
		return nil, nil, fmt.Errorf("datagen: financial graph needs ≥1 person, ≥2 accounts, ≥1 loan, ≥1 medium")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lay := &FinLayout{}
	lay.PersonLo, lay.PersonHi = 0, graph.VertexID(cfg.NumPersons)
	lay.AccountLo, lay.AccountHi = lay.PersonHi, lay.PersonHi+graph.VertexID(cfg.NumAccounts)
	lay.LoanLo, lay.LoanHi = lay.AccountHi, lay.AccountHi+graph.VertexID(cfg.NumLoans)
	lay.MediumLo, lay.MediumHi = lay.LoanHi, lay.LoanHi+graph.VertexID(cfg.NumMediums)
	n := int(lay.MediumHi)

	b := graph.NewBuilder(n)
	ids := make(graph.Int64Column, n)
	blocked := make(graph.BoolColumn, n)
	balance := make(graph.Float64Column, n)
	amount := make(graph.Float64Column, n)
	for v := 0; v < n; v++ {
		ids[v] = int64(v) + 1000
	}
	for v := lay.PersonLo; v < lay.PersonHi; v++ {
		b.SetLabel(v, "Person")
	}
	for v := lay.AccountLo; v < lay.AccountHi; v++ {
		b.SetLabel(v, "Account")
	}
	for v := lay.LoanLo; v < lay.LoanHi; v++ {
		b.SetLabel(v, "Loan")
		balance[v] = float64(1000+rng.Intn(100000)) / 10
		amount[v] = balance[v] * (1 + rng.Float64())
	}
	for v := lay.MediumLo; v < lay.MediumHi; v++ {
		b.SetLabel(v, "Medium")
		if rng.Float64() < cfg.BlockedFraction {
			blocked[v] = true
		}
	}
	b.SetProp("id", ids)
	b.SetProp("isBlocked", blocked)
	b.SetProp("balance", balance)
	b.SetProp("loanAmount", amount)

	account := func() graph.VertexID {
		return lay.AccountLo + graph.VertexID(rng.Intn(cfg.NumAccounts))
	}
	// own: each account owned by exactly one person.
	for a := lay.AccountLo; a < lay.AccountHi; a++ {
		p := lay.PersonLo + graph.VertexID(rng.Intn(cfg.NumPersons))
		b.AddEdge("own", p, a)
	}
	// transfer / withdraw between accounts, hub-skewed.
	pool := make([]graph.VertexID, 0, cfg.NumTransfers)
	for i := 0; i < cfg.NumTransfers; i++ {
		s := account()
		if len(pool) > 0 && rng.Float64() < 0.5 {
			s = pool[rng.Intn(len(pool))]
		}
		d := account()
		for d == s {
			d = account()
		}
		b.AddEdge("transfer", s, d)
		pool = append(pool, d)
	}
	for i := 0; i < cfg.NumWithdraws; i++ {
		s := account()
		d := account()
		for d == s {
			d = account()
		}
		b.AddEdge("withdraw", s, d)
	}
	// deposit: each loan deposits into exactly one account.
	for l := lay.LoanLo; l < lay.LoanHi; l++ {
		b.AddEdge("deposit", l, account())
	}
	// signIn: each medium signs into 1–3 accounts.
	for m := lay.MediumLo; m < lay.MediumHi; m++ {
		k := 1 + rng.Intn(3)
		for i := 0; i < k; i++ {
			b.AddEdge("signIn", m, account())
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, lay, nil
}
