package vexpand

import (
	"math/bits"

	"repro/internal/bitmatrix"
	"repro/internal/graph"
)

// Kernel selects the expand kernel implementation. The non-Auto values form
// the ablation ladder of Figure 9: each adds one optimization of §4 on top
// of the previous.
type Kernel int

const (
	// Auto picks BFS for small source sets and the fully optimized matrix
	// kernel otherwise (§3: kernels "suited for different scenarios").
	Auto Kernel = iota
	// Strawman is the §4.1 baseline: a row-major bit matrix updated with
	// per-bit set_bit (explicit word/bit address computation) while
	// iterating CSR adjacency per source row.
	Strawman
	// ColumnMajor stores the matrix in stacked columnar-major format and
	// uses or_column over insertion-ordered COO edges, with a plain
	// 8-word loop (no unrolling).
	ColumnMajor
	// SIMD is ColumnMajor with the 8-word OR fully unrolled on slice
	// views — the Go stand-in for one AVX-512 VPORD (see DESIGN.md).
	SIMD
	// Hilbert is SIMD over the Hilbert-ordered COO edge list (§4.2).
	Hilbert
	// Prefetch is Hilbert plus a lookahead touch of the columns used by
	// the (x+Lookahead)-th edge, the software-prefetch stand-in.
	Prefetch
	// BFS expands each source independently with frontier bitmaps over
	// CSR adjacency; preferable when |S| is small.
	BFS
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case Auto:
		return "auto"
	case Strawman:
		return "strawman"
	case ColumnMajor:
		return "column-major"
	case SIMD:
		return "simd"
	case Hilbert:
		return "hilbert"
	case Prefetch:
		return "prefetch"
	case BFS:
		return "bfs"
	default:
		return "unknown"
	}
}

// rowMatrix is the straw-man's flat row-major bit matrix: bit (r, c) lives
// in words[r*wordsPerRow + c/64]. Adjacent destination bits of one source
// row are spread across the whole row — the layout whose write
// amplification §4.2 diagnoses.
type rowMatrix struct {
	rows, cols  int
	wordsPerRow int
	words       []uint64
}

func newRowMatrix(rows, cols int) *rowMatrix {
	wpr := (cols + 63) / 64
	return &rowMatrix{rows: rows, cols: cols, wordsPerRow: wpr, words: make([]uint64, rows*wpr)}
}

// setBit is the paper's set_bit: full division/modulo address computation
// plus a read-modify-write of one word.
//
//vs:hotpath
func (m *rowMatrix) setBit(r, c int) {
	// uint guard so the prove pass drops the bounds check; callers always
	// pass in-range coordinates, so the branch is never taken.
	w := m.words
	if i := r*m.wordsPerRow + c/64; uint(i) < uint(len(w)) {
		w[i] |= 1 << uint(c%64)
	}
}

func (m *rowMatrix) get(r, c int) bool {
	return m.words[r*m.wordsPerRow+c/64]&(1<<uint(c%64)) != 0
}

func (m *rowMatrix) reset() { clear(m.words) }

// row returns the words of row r, or nil when r is out of range. The
// explicit guard keeps the slice expression check-free when this is
// inlined into the hotpath kernels.
func (m *rowMatrix) row(r int) []uint64 {
	// Single field load + overflow-safe bound so the prove pass can drop
	// the slice check when this is inlined into the kernels.
	w := m.words
	wpr := m.wordsPerRow
	base := r * wpr
	hi := base + wpr
	if wpr <= 0 || base < 0 || hi < base || hi > len(w) || hi > cap(w) {
		return nil
	}
	return w[base:hi]
}

// toStacked converts to the stacked columnar format for shared
// result handling.
func (m *rowMatrix) toStacked() *bitmatrix.Matrix {
	out := bitmatrix.New(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		row := m.row(r)
		for wi, word := range row {
			for word != 0 {
				tz := trailingZeros(word)
				c := wi*64 + tz
				out.Set(r, c)
				word &= word - 1
			}
		}
	}
	return out
}

func (m *rowMatrix) fromStacked(src *bitmatrix.Matrix) {
	m.reset()
	src.ForEachSet(func(r, c int) { m.setBit(r, c) })
}

// strawmanStep performs one expand step on row-major matrices: for every
// source row i and every reachable vertex k, iterate k's adjacency and
// set_bit each destination (Figure 4b).
//
//vs:hotpath
func strawmanStep(cur, next *rowMatrix, sets []*graph.EdgeSet, dir graph.Direction) {
	for r := 0; r < cur.rows; r++ {
		row := cur.row(r)
		for wi, word := range row {
			for word != 0 {
				tz := trailingZeros(word)
				k := graph.VertexID(wi*64 + tz)
				word &= word - 1
				for _, es := range sets {
					for _, j := range es.Neighbors(k, dir) {
						next.setBit(r, int(j))
					}
				}
			}
		}
	}
}

// orColumnLoop ORs src's column srcCol into dst's column dstCol within one
// stack using a plain loop — the ColumnMajor rung of the ladder.
//
//vs:hotpath
func orColumnLoop(dst, src *bitmatrix.Matrix, stack, srcCol, dstCol int) {
	d := dst.ColumnWords(stack, dstCol)
	s := src.ColumnWords(stack, srcCol)
	if len(d) < bitmatrix.WordsPerColumn || len(s) < bitmatrix.WordsPerColumn {
		return
	}
	for i, w := range s[:bitmatrix.WordsPerColumn] {
		d[i] |= w
	}
}

// cooStep performs one expand step of the stacked-columnar kernel over a
// COO edge list: for every stack and every edge (k → j), OR column k of cur
// into column j of next (Figure 4c). The unrolled flag selects the
// "SIMD" 8-word unrolled OR; lookahead > 0 adds the prefetch touch.
//
//vs:hotpath
func cooStep(cur, next *bitmatrix.Matrix, from, to []uint32, stackLo, stackHi int, unrolled bool, lookahead int) {
	// The COO arrays are always built parallel; restating the equality as
	// a branch makes every from[x]/to[x] below provably in range.
	if len(from) != len(to) {
		return
	}
	for s := stackLo; s < stackHi; s++ {
		switch {
		case lookahead > 0:
			n := len(from)
			for x := 0; x < n; x++ {
				if ahead := x + lookahead; uint(ahead) < uint(n) {
					// Demand-load the cache lines the (x+lookahead)-th
					// edge will need, as §4.2's prefetcht0 would.
					_ = cur.TouchColumn(s, int(from[ahead]))
					_ = next.TouchColumn(s, int(to[ahead]))
				}
				next.OrColumnFrom(cur, s, int(from[x]), int(to[x]))
			}
		case unrolled:
			for x := range from {
				next.OrColumnFrom(cur, s, int(from[x]), int(to[x]))
			}
		default:
			for x := range from {
				orColumnLoop(next, cur, s, int(from[x]), int(to[x]))
			}
		}
	}
}

// trailingZeros is the paper's ctz; math/bits compiles it to TZCNT on amd64.
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }
