package telemetry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestQueryRegistryLifecycle(t *testing.T) {
	r := NewQueryRegistry(8)
	canceled := false
	qi := r.Register("MATCH (a) RETURN a", "req-7", func() { canceled = true })
	if qi.ID() == 0 {
		t.Fatal("Register assigned id 0")
	}
	qi.SetPhase(PhaseExecute)
	qi.AddOps(3)
	qi.OpStarted()
	qi.OpFinished()
	qi.AddPairs(42)
	qi.AddMatrixBytes(1024)
	qi.AddCacheHit()

	active, history := r.Snapshot()
	if len(active) != 1 || len(history) != 0 {
		t.Fatalf("Snapshot = %d active, %d history; want 1, 0", len(active), len(history))
	}
	a := active[0]
	if a.ID != qi.ID() || a.Query != "MATCH (a) RETURN a" || a.RequestID != "req-7" {
		t.Fatalf("active snapshot identity = %+v", a)
	}
	if a.Phase != "execute" {
		t.Fatalf("Phase = %q, want execute", a.Phase)
	}
	p := a.Progress
	if p.OpsTotal != 3 || p.OpsDone != 1 || p.OpsRunning != 0 || p.OpsQueued != 2 {
		t.Fatalf("ops progress = %+v", p)
	}
	if p.Pairs != 42 || p.MatrixBytes != 1024 || p.CacheHits != 1 {
		t.Fatalf("counters = %+v", p)
	}

	r.Complete(qi, 5, nil)
	active, history = r.Snapshot()
	if len(active) != 0 || len(history) != 1 {
		t.Fatalf("after Complete: %d active, %d history", len(active), len(history))
	}
	h := history[0]
	if h.ID != qi.ID() || h.Status != "ok" || h.Rows != 5 || h.Error != "" {
		t.Fatalf("history record = %+v", h)
	}
	if canceled {
		t.Fatal("Complete must not invoke cancel")
	}

	// Double-complete records only once.
	r.Complete(qi, 99, errors.New("late"))
	_, history = r.Snapshot()
	if len(history) != 1 || history[0].Rows != 5 {
		t.Fatalf("double Complete changed history: %+v", history)
	}
}

func TestQueryRegistryStatuses(t *testing.T) {
	r := NewQueryRegistry(8)

	qe := r.Register("bad query", "", nil)
	r.Complete(qe, 0, errors.New("boom"))

	qk := r.Register("slow query", "", func() {})
	if !r.Kill(qk.ID()) {
		t.Fatal("Kill returned false for a running query")
	}
	if !qk.Killed() {
		t.Fatal("Killed() = false after Kill")
	}
	r.Complete(qk, 0, context.Canceled)

	if r.Kill(12345) {
		t.Fatal("Kill of unknown id returned true")
	}

	_, history := r.Snapshot()
	if len(history) != 2 {
		t.Fatalf("history len = %d", len(history))
	}
	// Newest first: the killed query completed last.
	if history[0].Status != "killed" {
		t.Fatalf("killed query status = %q", history[0].Status)
	}
	if history[1].Status != "error" || history[1].Error != "boom" {
		t.Fatalf("failed query record = %+v", history[1])
	}
}

func TestQueryRegistryKillCancels(t *testing.T) {
	r := NewQueryRegistry(4)
	ctx, cancel := context.WithCancel(context.Background())
	qi := r.Register("q", "", cancel)
	if err := ctx.Err(); err != nil {
		t.Fatalf("ctx canceled before Kill: %v", err)
	}
	r.Kill(qi.ID())
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("ctx.Err() = %v after Kill, want Canceled", ctx.Err())
	}
}

func TestQueryRegistryHistoryEviction(t *testing.T) {
	r := NewQueryRegistry(3)
	var ids []uint64
	for i := 0; i < 5; i++ {
		qi := r.Register(fmt.Sprintf("q%d", i), "", nil)
		ids = append(ids, qi.ID())
		r.Complete(qi, int64(i), nil)
	}
	_, history := r.Snapshot()
	if len(history) != 3 {
		t.Fatalf("history len = %d, want 3 (ring capacity)", len(history))
	}
	// Newest first: q4, q3, q2 — q0 and q1 evicted in arrival order.
	for i, want := range []uint64{ids[4], ids[3], ids[2]} {
		if history[i].ID != want {
			t.Fatalf("history[%d].ID = %d, want %d (order %+v)", i, history[i].ID, want, history)
		}
	}
}

func TestQueryRegistryConcurrent(t *testing.T) {
	r := NewQueryRegistry(16)
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qi := r.Register(fmt.Sprintf("w%d-q%d", w, i), "", func() {})
				qi.SetPhase(PhaseExecute)
				qi.AddOps(2)
				qi.OpStarted()
				qi.AddPairs(10)
				if i%7 == 0 {
					r.Kill(qi.ID())
				}
				qi.OpFinished()
				r.Complete(qi, 1, nil)
			}
		}(w)
	}
	// Concurrent snapshots while the workers churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	active, history := r.Snapshot()
	if len(active) != 0 {
		t.Fatalf("%d queries leaked in active set", len(active))
	}
	if len(history) != 16 {
		t.Fatalf("history len = %d, want ring capacity 16", len(history))
	}
}

func TestQueryInfoNilSafe(t *testing.T) {
	var qi *QueryInfo
	qi.SetPhase(PhaseExecute)
	qi.AddOps(1)
	qi.OpStarted()
	qi.OpFinished()
	qi.AddPairs(1)
	qi.AddMatrixBytes(1)
	qi.AddCacheHit()
	if qi.ID() != 0 || qi.Killed() {
		t.Fatal("nil QueryInfo accessors")
	}
	// Complete on nil must be a no-op, not a panic.
	NewQueryRegistry(2).Complete(nil, 0, nil)
}

func TestQueryContextCarriage(t *testing.T) {
	if CurrentQuery(context.Background()) != nil {
		t.Fatal("CurrentQuery on background ctx != nil")
	}
	r := NewQueryRegistry(2)
	qi := r.Register("q", "", nil)
	ctx := WithQuery(context.Background(), qi)
	if CurrentQuery(ctx) != qi {
		t.Fatal("CurrentQuery did not round-trip")
	}
	if RequestIDFromContext(ctx) != "" {
		t.Fatal("RequestIDFromContext on unset ctx != empty")
	}
	ctx = WithRequestID(ctx, "42")
	if RequestIDFromContext(ctx) != "42" {
		t.Fatal("RequestIDFromContext did not round-trip")
	}
}

func TestQueryPhaseString(t *testing.T) {
	for phase, want := range map[QueryPhase]string{
		PhaseStart:    "start",
		PhasePlan:     "plan",
		PhaseExecute:  "execute",
		QueryPhase(9): "start",
	} {
		if got := phase.String(); got != want {
			t.Errorf("QueryPhase(%d).String() = %q, want %q", phase, got, want)
		}
	}
}
