// Package client is the Go driver for vsserve's framed binary wire
// protocol. A Conn is one connection (one server-side session); Run starts
// a query and returns a Rows the caller iterates with Next — the driver
// fetches batches behind the scenes, so iterating a billion-row result
// holds one batch in client memory and one batch in server memory at a
// time. A Conn is not safe for concurrent use; open one per goroutine.
//
//	c, err := client.Dial("localhost:7688", client.Options{})
//	defer c.Close()
//	rows, err := c.Run("MATCH (a:Person)-[:knows]->(b) RETURN a, b", nil)
//	for {
//		row, err := rows.Next()
//		if err == client.ErrDone { break }
//		...
//	}
package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/wire"
)

// ErrDone is returned by Rows.Next after the last row of a successful
// result.
var ErrDone = errors.New("client: no more rows")

// ServerError is a FAILURE from the server, preserving the protocol code
// (syntax_error, query_error, protocol_error).
type ServerError struct {
	Code    string
	Message string
}

func (e *ServerError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Options configures a Conn.
type Options struct {
	// DialTimeout bounds connection establishment; 0 = no limit.
	DialTimeout time.Duration
	// FetchBatch is the row count requested per FETCH; 0 = the server's
	// configured batch size.
	FetchBatch int
	// Client is the client name sent in HELLO (shown in server logs).
	Client string
}

// ServerInfo is the server's HELLO response.
type ServerInfo struct {
	Server     string
	Version    int64
	FetchBatch int64
}

// Conn is one wire-protocol connection. Exactly one Rows may be open at a
// time; Run while a Rows is open drains it implicitly via DISCARD.
type Conn struct {
	conn   net.Conn
	opts   Options
	info   ServerInfo
	rows   *Rows // open result, if any
	in     []byte
	out    []byte
	err    error // sticky transport error; the conn is dead once set
	closed bool  // Close already ran; further Closes are no-ops
}

// Dial connects, handshakes, and exchanges HELLO.
func Dial(addr string, opts Options) (*Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{conn: conn, opts: opts}
	if err := c.handshake(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	if err := c.hello(); err != nil {
		_ = conn.Close()
		return nil, err
	}
	return c, nil
}

// Server returns the HELLO metadata.
func (c *Conn) Server() ServerInfo { return c.info }

func (c *Conn) handshake() error {
	var hs [8]byte
	copy(hs[:4], wire.Magic)
	hs[4] = byte(wire.Version >> 24)
	hs[5] = byte(wire.Version >> 16)
	hs[6] = byte(wire.Version >> 8)
	hs[7] = byte(wire.Version)
	if _, err := c.conn.Write(hs[:]); err != nil {
		return fmt.Errorf("client: handshake write: %w", err)
	}
	var accept [4]byte
	if _, err := io.ReadFull(c.conn, accept[:]); err != nil {
		return fmt.Errorf("client: handshake read: %w", err)
	}
	got := uint32(accept[0])<<24 | uint32(accept[1])<<16 | uint32(accept[2])<<8 | uint32(accept[3])
	if got != wire.Version {
		return fmt.Errorf("client: server rejected protocol version %d (answered %d)", wire.Version, got)
	}
	return nil
}

func (c *Conn) hello() error {
	name := c.opts.Client
	if name == "" {
		name = "vsclient"
	}
	meta, err := c.request(wire.MsgHello, map[string]any{"client": name})
	if err != nil {
		return err
	}
	c.info.Server, _ = wire.BodyString(meta, "server")
	c.info.Version, _ = wire.BodyInt(meta, "version")
	c.info.FetchBatch, _ = wire.BodyInt(meta, "fetch_batch")
	return nil
}

// Run starts a query. Param values may be int64, int, bool, float64,
// string, []int64, or []any of those. The returned Rows is valid until the
// next Run or Close.
func (c *Conn) Run(query string, params map[string]any) (*Rows, error) {
	if c.rows != nil {
		if err := c.rows.Close(); err != nil {
			return nil, err
		}
	}
	body := map[string]any{"query": query}
	if len(params) > 0 {
		body["params"] = params
	}
	meta, err := c.request(wire.MsgRun, body)
	if err != nil {
		return nil, err
	}
	cursor, _ := wire.BodyInt(meta, "cursor")
	streaming, _ := meta["streaming"].(bool)
	var cols []string
	if raw, ok := meta["columns"].([]any); ok {
		cols = make([]string, 0, len(raw))
		for _, v := range raw {
			s, _ := v.(string)
			cols = append(cols, s)
		}
	}
	c.rows = &Rows{conn: c, cursor: cursor, cols: cols, streaming: streaming, more: true}
	return c.rows, nil
}

// Ping round-trips a liveness probe.
func (c *Conn) Ping() error {
	if c.err != nil {
		return c.err
	}
	if err := c.sendMessage(wire.MsgPing, nil); err != nil {
		return err
	}
	msg, _, err := c.readMessage()
	if err != nil {
		return err
	}
	if msg != wire.MsgPong {
		return c.fail(fmt.Errorf("client: expected PONG, got 0x%02X", msg))
	}
	return nil
}

// Close sends GOODBYE and closes the connection. It is idempotent: the
// first call tears the connection down, later calls return nil — so
// `defer c.Close()` composes with an explicit error-path Close.
func (c *Conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.rows != nil && !c.rows.closed {
		_ = c.rows.Close() // best effort; the server reaps on disconnect anyway
	}
	if c.err == nil {
		_ = c.sendMessage(wire.MsgGoodbye, nil) // GOODBYE is a courtesy; the close below is the real teardown
	}
	return c.conn.Close()
}

// request sends one message and reads its SUCCESS metadata, translating a
// FAILURE into *ServerError.
func (c *Conn) request(msg byte, body map[string]any) (map[string]any, error) {
	if c.err != nil {
		return nil, c.err
	}
	if err := c.sendMessage(msg, body); err != nil {
		return nil, err
	}
	return c.readSuccess()
}

func (c *Conn) readSuccess() (map[string]any, error) {
	msg, meta, err := c.readMessage()
	if err != nil {
		return nil, err
	}
	switch msg {
	case wire.MsgSuccess:
		return meta, nil
	case wire.MsgFailure:
		return nil, failureError(meta)
	default:
		return nil, c.fail(fmt.Errorf("client: expected SUCCESS, got 0x%02X", msg))
	}
}

func (c *Conn) sendMessage(msg byte, body map[string]any) error {
	c.out = c.out[:0]
	enc, err := wire.AppendMessage(c.out, msg, body)
	if err != nil {
		return err
	}
	c.out = enc
	if err := wire.WriteFrame(c.conn, c.out); err != nil {
		return c.fail(err)
	}
	return nil
}

func (c *Conn) readMessage() (byte, map[string]any, error) {
	frame, err := wire.ReadFrame(c.conn, c.in)
	if err != nil {
		return 0, nil, c.fail(err)
	}
	c.in = frame
	msg, body, err := wire.ParseMessage(frame)
	if err != nil {
		return 0, nil, c.fail(err)
	}
	return msg, body, nil
}

// fail marks the connection dead; protocol state is unrecoverable after a
// transport or framing error.
func (c *Conn) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

func failureError(meta map[string]any) error {
	code, _ := wire.BodyString(meta, "code")
	message, _ := wire.BodyString(meta, "message")
	return &ServerError{Code: code, Message: message}
}

// Rows iterates one query's result. Next returns rows in stream order;
// ErrDone ends a successful result, any other error is terminal (server
// failures arrive after the rows that preceded them, so the prefix already
// delivered is valid).
type Rows struct {
	conn      *Conn
	cursor    int64
	cols      []string
	streaming bool

	buf    [][]any
	pos    int
	more   bool
	closed bool
	err    error
}

// Columns returns the result's column names.
func (r *Rows) Columns() []string { return r.cols }

// Streaming reports whether the server streams this result with constant
// memory (versus serving a materialized set).
func (r *Rows) Streaming() bool { return r.streaming }

// Next returns the next row, fetching a batch from the server when the
// local buffer drains. Returns ErrDone after the last row.
func (r *Rows) Next() ([]any, error) {
	for r.pos >= len(r.buf) {
		if r.err != nil {
			return nil, r.err
		}
		if r.closed || !r.more {
			return nil, ErrDone
		}
		if err := r.fetch(); err != nil {
			r.err = err
			return nil, err
		}
	}
	row := r.buf[r.pos]
	r.pos++
	return row, nil
}

// fetch pulls one batch: RECORD frames, then SUCCESS{has_more} or FAILURE.
func (r *Rows) fetch() error {
	c := r.conn
	body := map[string]any{"cursor": r.cursor}
	if r.opts().FetchBatch > 0 {
		body["n"] = int64(r.opts().FetchBatch)
	}
	if err := c.sendMessage(wire.MsgFetch, body); err != nil {
		return err
	}
	r.buf = r.buf[:0]
	r.pos = 0
	for {
		frame, err := wire.ReadFrame(c.conn, c.in)
		if err != nil {
			return c.fail(err)
		}
		c.in = frame
		if len(frame) == 0 {
			return c.fail(fmt.Errorf("client: empty frame"))
		}
		switch frame[0] {
		case wire.MsgRecord:
			row, err := wire.ReadRecord(frame[1:])
			if err != nil {
				return c.fail(err)
			}
			r.buf = append(r.buf, row)
		case wire.MsgSuccess:
			_, meta, err := wire.ParseMessage(frame)
			if err != nil {
				return c.fail(err)
			}
			r.more, _ = meta["has_more"].(bool)
			if !r.more {
				r.closed = true // server closed the cursor at exhaustion
			}
			return nil
		case wire.MsgFailure:
			_, meta, err := wire.ParseMessage(frame)
			if err != nil {
				return c.fail(err)
			}
			r.closed = true
			return failureError(meta)
		default:
			return c.fail(fmt.Errorf("client: unexpected message 0x%02X during fetch", frame[0]))
		}
	}
}

// Close discards the server-side cursor (releasing its buffer memory)
// unless the result already completed. Safe to call multiple times.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	_, err := r.conn.request(wire.MsgDiscard, map[string]any{"cursor": r.cursor})
	return err
}

func (r *Rows) opts() Options { return r.conn.opts }
