package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds metric instruments and renders them in the Prometheus
// text exposition format (version 0.0.4). Instruments sharing a name form
// one family (same HELP/TYPE, different const labels) — the per-stage
// latency histograms are one family with a "stage" label.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order of family names
}

type family struct {
	name        string
	help        string
	kind        string // "counter" | "gauge" | "histogram"
	instruments []exposer
}

// exposer renders one instrument's sample lines.
type exposer interface {
	expose(w io.Writer, name string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, kind string, inst exposer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.names = append(r.names, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	f.instruments = append(f.instruments, inst)
}

// WriteTo renders every registered family in text exposition format,
// sorted by family name. It implements the body of GET /metrics.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	cw := &countingWriter{w: w}
	for _, f := range fams {
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.kind)
		for _, inst := range f.instruments {
			inst.expose(cw, f.name)
		}
	}
	return cw.n, cw.err
}

// instrumentRef is one registered instrument with its family identity —
// the enumeration the time-series collector syncs its columns from.
type instrumentRef struct {
	family string
	kind   string
	inst   exposer
}

// instrumentCount returns how many instruments are registered — a cheap
// staleness check the time-series collector performs before re-walking the
// registry.
func (r *Registry) instrumentCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.families {
		n += len(f.instruments)
	}
	return n
}

// snapshotInstruments lists every registered instrument in family
// registration order (instruments within a family in their own
// registration order).
func (r *Registry) snapshotInstruments() []instrumentRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []instrumentRef
	for _, name := range r.names {
		f := r.families[name]
		for _, inst := range f.instruments {
			out = append(out, instrumentRef{family: f.name, kind: f.kind, inst: inst})
		}
	}
	return out
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// Labels are const labels attached to one instrument of a family, e.g.
// {"stage": "expand"}.
type Labels map[string]string

// render returns `k1="v1",k2="v2"` with sorted keys ("" when empty).
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k + `="` + l[k] + `"`
	}
	return out
}

// seriesName renders name{labels} (or just name without labels).
func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v      atomic.Int64
	labels string
}

// NewCounter registers a counter. Help is shared by every instrument of
// the family; labels distinguish instruments within it.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	c := &Counter{labels: labels.render()}
	r.register(name, help, "counter", c)
	return c
}

// Inc adds one.
//
//vs:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (must be ≥ 0 to keep the counter monotone).
//
//vs:hotpath
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", seriesName(name, c.labels), c.v.Load())
}

// Gauge is an int64 metric that can go up and down.
type Gauge struct {
	v      atomic.Int64
	labels string
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{labels: labels.render()}
	r.register(name, help, "gauge", g)
	return g
}

// Add moves the gauge by delta (negative to decrease).
//
//vs:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
//
//vs:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", seriesName(name, g.labels), g.v.Load())
}

// FuncGauge is a gauge whose value is computed by a callback at exposition
// time — the bridge for externally owned values like runtime/metrics
// samples, where polling a sampler beats mirroring state into an atomic.
type FuncGauge struct {
	fn     func() float64
	labels string
}

// NewFuncGauge registers a callback-backed gauge. fn is called once per
// exposition and must be safe for concurrent use.
func (r *Registry) NewFuncGauge(name, help string, labels Labels, fn func() float64) *FuncGauge {
	g := &FuncGauge{fn: fn, labels: labels.render()}
	r.register(name, help, "gauge", g)
	return g
}

func (g *FuncGauge) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", seriesName(name, g.labels), formatBound(g.fn()))
}

// FuncCounter is a counter whose cumulative value is computed by a callback
// at exposition time. The callback must be monotone non-decreasing (e.g. a
// runtime/metrics cumulative sample).
type FuncCounter struct {
	fn     func() float64
	labels string
}

// NewFuncCounter registers a callback-backed counter.
func (r *Registry) NewFuncCounter(name, help string, labels Labels, fn func() float64) *FuncCounter {
	c := &FuncCounter{fn: fn, labels: labels.render()}
	r.register(name, help, "counter", c)
	return c
}

func (c *FuncCounter) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", seriesName(name, c.labels), formatBound(c.fn()))
}

// FloatCounter is a monotonically increasing float64 metric — for
// cumulative quantities that are not integral, like attributed CPU seconds.
type FloatCounter struct {
	bits   atomic.Uint64 // float64 bits, CAS-accumulated
	labels string
}

// NewFloatCounter registers a float-valued counter.
func (r *Registry) NewFloatCounter(name, help string, labels Labels) *FloatCounter {
	c := &FloatCounter{labels: labels.render()}
	r.register(name, help, "counter", c)
	return c
}

// Add accumulates delta (must be ≥ 0 to keep the counter monotone).
func (c *FloatCounter) Add(delta float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current cumulative value.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *FloatCounter) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", seriesName(name, c.labels), formatBound(c.Value()))
}

// Histogram is a fixed-bucket histogram of float64 observations (typically
// seconds). Buckets are upper bounds; observations above the last bound
// land in the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, non-cumulative; cumulated at exposition
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	labels  string
}

// DefBuckets is the default latency bucket ladder in seconds, spanning
// single-microsecond operator calls to ten-second analytical queries. The
// sub-millisecond rungs matter at small scales: at -scale 0.02 most kernel
// stages finish in microseconds and would otherwise collapse into one
// bucket.
var DefBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025,
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram registers a histogram with the given bucket upper bounds
// (nil = DefBuckets). Bounds must be sorted ascending.
func (r *Registry) NewHistogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		labels: labels.render(),
	}
	r.register(name, help, "histogram", h)
	return h
}

// Observe records one observation.
//
//vs:hotpath
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds) // +Inf bucket
	for i, ub := range h.bounds {
		if v <= ub {
			idx = i
			break
		}
	}
	// counts has len(bounds)+1 entries (NewHistogram), but that relation
	// crosses two field loads; the uint guard restates it for the prove
	// pass and never fires.
	counts := h.counts
	if uint(idx) < uint(len(counts)) {
		counts[idx].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) expose(w io.Writer, name string) {
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		le := `le="` + formatBound(ub) + `"`
		labels := h.labels
		if labels != "" {
			labels += ","
		}
		fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", labels+le), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	inf := h.labels
	if inf != "" {
		inf += ","
	}
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", inf+`le="+Inf"`), cum)
	fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", h.labels), formatBound(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", h.labels), h.count.Load())
}

// formatBound renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatBound(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
