package vexpand

import (
	"testing"

	"repro/internal/bitmatrix"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/storage"
)

// TestSpilledPerStepMatchesInMemory checks that spilling step matrices to
// disk (§5.3) changes nothing about the results.
func TestSpilledPerStepMatchesInMemory(t *testing.T) {
	g := figure3(t)
	d := pattern.Determiner{KMin: 1, KMax: 4, Dir: graph.Both, Type: pattern.Any,
		EdgeLabels: []string{"knows"}}
	sources := []graph.VertexID{0, 2, 4}

	mem, err := Expand(g, sources, d, Options{Kernel: Hilbert, KeepPerStep: true})
	if err != nil {
		t.Fatal(err)
	}

	sm, err := storage.NewSpillManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	spilled, err := Expand(g, sources, d, Options{Kernel: Hilbert, KeepPerStep: true, Spill: sm})
	if err != nil {
		t.Fatal(err)
	}

	if !spilled.Reach.Equal(mem.Reach) {
		t.Fatal("reach matrices differ under spill")
	}
	if len(spilled.PerStep) != 0 {
		t.Fatal("spilled run retained in-memory step matrices")
	}
	if spilled.StepCount() != mem.StepCount() {
		t.Fatalf("StepCount = %d, want %d", spilled.StepCount(), mem.StepCount())
	}
	if sm.SpilledBytes() == 0 {
		t.Fatal("nothing was spilled")
	}

	// StepMatrix round-trips every step.
	for c := 0; c < mem.StepCount(); c++ {
		sMat, err := spilled.StepMatrix(c)
		if err != nil {
			t.Fatal(err)
		}
		if !sMat.Equal(mem.PerStep[c]) {
			t.Fatalf("step %d differs after spill", c)
		}
	}

	// MinLength agrees for every (row, vertex).
	for row := range sources {
		for v := 0; v < g.NumVertices(); v++ {
			l1, ok1 := mem.MinLength(row, graph.VertexID(v))
			l2, ok2 := spilled.MinLength(row, graph.VertexID(v))
			if l1 != l2 || ok1 != ok2 {
				t.Fatalf("MinLength(%d,%d): mem (%d,%v) vs spill (%d,%v)", row, v, l1, ok1, l2, ok2)
			}
		}
	}

	// ForEachStep visits every step in order, bounded to one matrix.
	visited := 0
	err = spilled.ForEachStep(func(step int, m *bitmatrix.Matrix) error {
		visited++
		if step != visited {
			t.Fatalf("step order %d at visit %d", step, visited)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != mem.StepCount() {
		t.Fatalf("visited %d steps, want %d", visited, mem.StepCount())
	}
}
