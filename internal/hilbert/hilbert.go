// Package hilbert implements the Hilbert space-filling curve mapping used to
// order COO edge lists (§4.2 of the VertexSurge paper).
//
// Sorting edges (src, dst) by their position along a Hilbert curve over the
// (src, dst) plane makes consecutive edges touch nearby rows of both the
// source and the destination bit matrices, which is what makes the lookahead
// prefetch in the expand kernel effective and the traversal cache-oblivious.
package hilbert

import "sort"

// D returns the distance along the Hilbert curve of order `order` (a 2^order
// × 2^order grid) for the cell (x, y). x and y must be < 2^order.
func D(order uint, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d
}

// XY is the inverse of D: it returns the cell (x, y) at distance d along the
// Hilbert curve of the given order.
func XY(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < 1<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & (uint32(t) ^ rx)
		x, y = rot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rot rotates/flips a quadrant appropriately.
func rot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// OrderFor returns the smallest curve order whose grid covers coordinates in
// [0, n).
func OrderFor(n int) uint {
	order := uint(1)
	for (1 << order) < n {
		order++
	}
	return order
}

// SortPairs sorts the parallel slices (xs, ys) in place by Hilbert distance
// over a grid large enough to cover both coordinate spaces. It is the edge
// reordering applied to COO edge lists before matrix-kernel expansion.
func SortPairs(xs, ys []uint32) {
	if len(xs) != len(ys) {
		panic("hilbert: coordinate slices of different length")
	}
	if len(xs) == 0 {
		return
	}
	maxC := uint32(0)
	for i := range xs {
		if xs[i] > maxC {
			maxC = xs[i]
		}
		if ys[i] > maxC {
			maxC = ys[i]
		}
	}
	order := OrderFor(int(maxC) + 1)
	keys := make([]uint64, len(xs))
	for i := range xs {
		keys[i] = D(order, xs[i], ys[i])
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	outX := make([]uint32, len(xs))
	outY := make([]uint32, len(ys))
	for i, j := range idx {
		outX[i] = xs[j]
		outY[i] = ys[j]
	}
	copy(xs, outX)
	copy(ys, outY)
}
