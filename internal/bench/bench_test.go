package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/datagen"
	"repro/internal/engine"
)

// tiny keeps every experiment fast in unit tests.
func tiny() Config {
	return Config{Scale: 0.005, Budget: 5_000_000}
}

func TestFig2b(t *testing.T) {
	rows, err := Fig2b(tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.KMax != i+1 {
			t.Fatalf("row %d kmax = %d", i, r.KMax)
		}
		if r.VertexSurge <= 0 {
			t.Fatalf("kmax %d: no VertexSurge time", r.KMax)
		}
	}
	// Counts grow (weakly) with kmax.
	for i := 1; i < len(rows); i++ {
		if rows[i].Count < rows[i-1].Count {
			t.Fatalf("triangle count shrank: %d then %d", rows[i-1].Count, rows[i].Count)
		}
	}
	var buf bytes.Buffer
	PrintFig2b(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 2b") {
		t.Fatal("print output missing title")
	}
}

func TestTable1(t *testing.T) {
	cfg := Config{Scale: 0.0005}
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 datasets", len(rows))
	}
	names := datagen.Table1Names()
	for i, r := range rows {
		if r.Name != names[i] {
			t.Fatalf("row %d = %s, want %s", i, r.Name, names[i])
		}
		if r.GenV <= 0 || r.GenE <= 0 || r.SizeBytes <= 0 {
			t.Fatalf("%s: empty generated graph", r.Name)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, cfg, rows)
	if !strings.Contains(buf.String(), "Twitter2010") {
		t.Fatal("print output missing dataset")
	}
}

func TestFig6CoversAllCases(t *testing.T) {
	cells, err := Fig6(tiny(), []string{"LastFM"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range cells {
		seen[c.Case] = true
		if c.VertexSurge <= 0 {
			t.Fatalf("case %d on %s: no VertexSurge time", c.Case, c.Dataset)
		}
	}
	for n := 1; n <= 12; n++ {
		if !seen[n] {
			t.Errorf("case %d missing from Figure 6", n)
		}
	}
	var buf bytes.Buffer
	PrintFig6(&buf, cells)
	if !strings.Contains(buf.String(), "C12") {
		t.Fatal("print output missing case 12")
	}
}

func TestFig7LinearSweep(t *testing.T) {
	rows, err := Fig7(tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 cases", len(rows))
	}
	for _, r := range rows {
		if len(r.Times) != 3 {
			t.Fatalf("case %d has %d points", r.Case, len(r.Times))
		}
	}
	var buf bytes.Buffer
	PrintFig7(&buf, rows)
	if !strings.Contains(buf.String(), "k=3") {
		t.Fatal("print output missing sweep point")
	}
}

func TestFig8Breakdown(t *testing.T) {
	rows, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.Timings.Total <= 0 {
			t.Fatalf("case %d: no total time", r.Case)
		}
		// The paper's Figure 8 property: ANY-only cases 11 and 12 spend
		// no time maintaining visited sets.
		if (r.Case == 11 || r.Case == 12) && r.Timings.UpdateVisit != 0 {
			t.Errorf("case %d spent %v on UpdateVisit; ANY cases must not", r.Case, r.Timings.UpdateVisit)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows)
	if !strings.Contains(buf.String(), "UpdateVisit") {
		t.Fatal("print output missing stage")
	}
}

func TestTable2RatioGrows(t *testing.T) {
	rows, err := Table2(tiny(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's shape: at k_max = 1 join and expand are equal
	// (ratio 1); the ratio then grows strictly with k_max (1.52, 8.51).
	if rows[0].Ratio < 0.999 || rows[0].Ratio > 1.001 {
		t.Errorf("k=1 ratio = %f, want 1", rows[0].Ratio)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio <= rows[i-1].Ratio {
			t.Errorf("ratio not growing: %f then %f", rows[i-1].Ratio, rows[i].Ratio)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Join/Expand") {
		t.Fatal("print output missing ratio column")
	}
}

func TestFig9LadderAgreesAndPrints(t *testing.T) {
	rows, err := Fig9(tiny(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig9Ladder) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Speedup < 0.999 || rows[0].Speedup > 1.001 {
		t.Errorf("straw-man speedup = %f, want 1", rows[0].Speedup)
	}
	var buf bytes.Buffer
	PrintFig9(&buf, rows)
	for _, want := range []string{"strawman", "column-major", "simd", "hilbert", "prefetch"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("print output missing kernel %s", want)
		}
	}
}

// TestJoinCasesAgreeWithEngine is the deep validation behind Figure 6: the
// join baseline must compute identical answers to VertexSurge on every
// case, so measured gaps are purely about execution strategy.
func TestJoinCasesAgreeWithEngine(t *testing.T) {
	cfg := tiny()
	ds := newDatasets(cfg)

	// Social cases on LastFM.
	engSN, dSN, err := ds.engine("LastFM")
	if err != nil {
		t.Fatal(err)
	}
	jcSN := newJoinCases(dSN.Graph, cfg.Budget)
	cpSN := paramsFor(dSN)
	const kmax = 3

	if want, _, err := engSN.Case1(kmax); err != nil {
		t.Fatal(err)
	} else if got, err := jcSN.case1(kmax); err != nil || got != want {
		t.Errorf("case1: join %d (%v), engine %d", got, err, want)
	}

	want2, _, err := engSN.Case2(kmax, 0)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := jcSN.case2(kmax, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want2) {
		t.Errorf("case2: join %v, engine %v", got2, want2)
	}

	want3, _, err := engSN.Case3(kmax, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got3, err := jcSN.case3(kmax, 0); err != nil || !reflect.DeepEqual(got3, want3) {
		t.Errorf("case3 mismatch (%v)", err)
	}

	if want, _, err := engSN.Case4(2); err != nil {
		t.Fatal(err)
	} else if got, err := jcSN.case4(2); err != nil || got != want {
		t.Errorf("case4: join %d (%v), engine %d", got, err, want)
	}

	want5, _, err := engSN.Case5(cpSN.personIDs, kmax)
	if err != nil {
		t.Fatal(err)
	}
	if got5, err := jcSN.case5(cpSN.personIDs, kmax); err != nil || !reflect.DeepEqual(got5, want5) {
		t.Errorf("case5 mismatch (%v)", err)
	}

	// Bank cases on Rabobank.
	engRB, dRB, err := ds.engine("Rabobank")
	if err != nil {
		t.Fatal(err)
	}
	jcRB := newJoinCases(dRB.Graph, cfg.Budget)
	cpRB := paramsFor(dRB)
	if want, _, err := engRB.Case6(4); err != nil {
		t.Fatal(err)
	} else if got, err := jcRB.case6(4); err != nil || got != want {
		t.Errorf("case6: join %d (%v), engine %d", got, err, want)
	}
	want7, _, err := engRB.Case7(cpRB.accountID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got7, err := jcRB.case7(cpRB.accountID, 3); err != nil || got7 != len(want7) {
		t.Errorf("case7: join %d (%v), engine %d", got7, err, len(want7))
	}

	// FinBench cases.
	engFB, dFB, err := ds.engine("LDBC-FinBench-SF10")
	if err != nil {
		t.Fatal(err)
	}
	jcFB := newJoinCases(dFB.Graph, cfg.Budget)
	cpFB := paramsFor(dFB)

	want8, _, err := engFB.Case8(cpFB.accountID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got8, err := jcFB.case8(cpFB.accountID, 3); err != nil || !reflect.DeepEqual(got8, want8) {
		t.Errorf("case8 mismatch (%v): join %d rows, engine %d rows", err, len(got8), len(want8))
	}

	want9, _, err := engFB.Case9(cpFB.personID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got9, err := jcFB.case9(cpFB.personID, 3); err != nil || !reflect.DeepEqual(got9, want9) {
		t.Errorf("case9 mismatch (%v)", err)
	}

	want10, _, err := engFB.Case10(cpFB.pairA, cpFB.pairB)
	if err != nil {
		t.Fatal(err)
	}
	if got10, err := jcFB.case10(cpFB.pairA, cpFB.pairB); err != nil || got10 != want10 {
		t.Errorf("case10: join %d (%v), engine %d", got10, err, want10)
	}

	want11, _, err := engFB.Case11(cpFB.accountID)
	if err != nil {
		t.Fatal(err)
	}
	if got11, err := jcFB.case11(cpFB.accountID); err != nil || !reflect.DeepEqual(normalizeMidOther(got11), normalizeMidOther(want11)) {
		t.Errorf("case11 mismatch (%v)", err)
	}

	want12, _, err := engFB.Case12(cpFB.loanID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got12, err := jcFB.case12(cpFB.loanID, 3); err != nil || !reflect.DeepEqual(got12, want12) {
		t.Errorf("case12 mismatch (%v): join %d rows, engine %d rows", err, len(got12), len(want12))
	}
}

func normalizeMidOther(rows []engine.MidOther) []engine.MidOther {
	if len(rows) == 0 {
		return nil
	}
	return rows
}

func TestTimedMapsBudgetToTimeout(t *testing.T) {
	d, err := timed(func() error { return baseline.ErrBudgetExceeded })
	if err != nil || d != Timeout {
		t.Fatalf("timed = %v, %v", d, err)
	}
	if fmtDur(Timeout) != "timeout" || fmtDur(notRun) != "n/a" {
		t.Fatal("fmtDur special values wrong")
	}
}

func TestAblations(t *testing.T) {
	rows, err := Ablations(tiny())
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]int{}
	for _, r := range rows {
		groups[r.Group]++
		if r.Time <= 0 {
			t.Errorf("%s/%s: no time", r.Group, r.Variant)
		}
	}
	for _, g := range []string{"planner-order", "kernel-crossover", "fixpoint"} {
		if groups[g] < 2 {
			t.Errorf("group %s has %d variants", g, groups[g])
		}
	}
	var buf bytes.Buffer
	PrintAblations(&buf, rows)
	if !strings.Contains(buf.String(), "detect-fixpoint") {
		t.Fatal("print output missing variant")
	}
}
