package vslint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file builds the whole-program call graph the interprocedural
// analyzers (lock-order, hotpath-closure, cross-function resource balance,
// ctx-propagation chains) are computed over. Nodes are the module's
// function declarations plus every function literal (closures are callees
// in their own right: a callback stored in a field runs in whatever
// function invokes the field, not in the function that defined it).
//
// Callee resolution, from precise to conservative:
//
//   - EdgeStatic: direct calls of package-level functions and method calls
//     whose receiver has a static concrete type.
//   - EdgeField: calls through a func-typed struct field (a.OnPressure(n)).
//     Candidates are every function value the module ever stores into that
//     exact field object — assignments and keyed composite literals.
//   - EdgeIface: interface method dispatch. Candidates are the same-named
//     method of every module type that implements the interface. Marked
//     approximate: findings that depend on such an edge are demoted to
//     info severity so a conservative guess never hard-fails CI.
//   - EdgeSig: calls through plain func-typed variables or parameters.
//     Candidates are every module function or literal used as a value
//     whose signature is identical. Approximate, like EdgeIface.
//   - EdgeUnknown: anything else (call of a call result, indexed function
//     tables) targets the single Unknown node, which the analyzers treat
//     as "no information" — see the soundness caveats in DESIGN.md.
//
// Calls into other modules (the stdlib) are not represented: the analyzers
// assume external code does not call back into this module except through
// function values the graph already tracks.

// EdgeKind classifies how a call edge's callee was resolved.
type EdgeKind uint8

const (
	EdgeStatic EdgeKind = iota
	EdgeField
	EdgeIface
	EdgeSig
	EdgeUnknown
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeField:
		return "field"
	case EdgeIface:
		return "iface"
	case EdgeSig:
		return "sig"
	default:
		return "unknown"
	}
}

// Approx reports whether the edge kind is a conservative guess rather than
// a resolution the type system guarantees.
func (k EdgeKind) Approx() bool { return k == EdgeIface || k == EdgeSig || k == EdgeUnknown }

// CallEdge is one may-call relation.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	Pos    token.Pos
	Kind   EdgeKind
	// Go marks a call spawned with a go statement.
	Go bool
	// Call is the call expression the edge was derived from; the summary
	// propagation maps callee parameter effects through its arguments.
	Call *ast.CallExpr
}

// FuncNode is one function in the call graph: a declaration, a function
// literal, or the synthetic Unknown callee.
type FuncNode struct {
	ID int
	// Name is the import-path-qualified display name, e.g.
	// "repro/internal/exec.(*MatrixCache).Get" or "repro/internal/engine.New.func1".
	Name string
	Pkg  *Package      // nil for Unknown
	Decl *ast.FuncDecl // nil for literals and Unknown
	Lit  *ast.FuncLit  // nil for declarations and Unknown
	Obj  *types.Func   // nil for literals and Unknown

	Hotpath  bool // //vs:hotpath
	Coldpath bool // //vs:coldpath
	Noinline bool // //go:noinline

	// Parent is the enclosing declaration's node for function literals
	// (nil for declarations and Unknown). A literal inherits the parent's
	// context-carrier status: closures capture the enclosing ctx.
	Parent *FuncNode

	Out []*CallEdge
	In  []*CallEdge

	// SCC is the node's strongly-connected-component index; components are
	// numbered bottom-up (every callee outside the component has a smaller
	// index).
	SCC int
}

// Body returns the node's function body, or nil.
func (n *FuncNode) Body() *ast.BlockStmt {
	switch {
	case n.Decl != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	switch {
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Lit != nil:
		return n.Lit.Pos()
	}
	return token.NoPos
}

// CallGraph is the module-wide call graph.
type CallGraph struct {
	Mod     *Module
	Nodes   []*FuncNode
	Unknown *FuncNode

	// SCCs lists strongly connected components bottom-up: every edge out
	// of SCCs[i] that leaves the component lands in some SCCs[j] with j<i.
	SCCs [][]*FuncNode

	byObj  map[*types.Func]*FuncNode
	byLit  map[*ast.FuncLit]*FuncNode
	byName map[string]*FuncNode
}

// NodeByObj returns the node of a declared function, or nil.
func (g *CallGraph) NodeByObj(obj *types.Func) *FuncNode { return g.byObj[obj] }

// NodeByName returns the node with the given qualified display name, or nil.
func (g *CallGraph) NodeByName(name string) *FuncNode { return g.byName[name] }

const coldpathDirective = "vs:coldpath"

// BuildCallGraph constructs the call graph over every package of mod.
func BuildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		Mod:    mod,
		byObj:  map[*types.Func]*FuncNode{},
		byLit:  map[*ast.FuncLit]*FuncNode{},
		byName: map[string]*FuncNode{},
	}
	g.Unknown = g.addNode(&FuncNode{Name: "<unknown>"})

	b := &graphBuilder{g: g, fieldFuncs: map[*types.Var][]*FuncNode{}, sigFuncs: map[string][]*FuncNode{}}
	// Pass 1: declaration nodes (literal nodes are added while walking
	// bodies, before any edge can target them — candidates are collected
	// in pass 2, edges in pass 3).
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				n := g.addNode(&FuncNode{
					Name:     pkg.ImportPath + "." + funcDisplayName(fd),
					Pkg:      pkg,
					Decl:     fd,
					Obj:      obj,
					Hotpath:  hasDirective(fd.Doc, hotpathDirective),
					Coldpath: hasDirective(fd.Doc, coldpathDirective),
					Noinline: hasDirective(fd.Doc, "go:noinline"),
				})
				if obj != nil {
					g.byObj[obj] = n
				}
				b.addLitNodes(n)
			}
		}
	}
	// Pass 2: dynamic-dispatch candidate indexes (field stores, functions
	// used as values, interface implementations).
	b.collectCandidates()
	// Pass 3: edges.
	for _, n := range g.Nodes {
		if n.Decl != nil {
			b.addEdges(n, n.Decl.Body)
		} else if n.Lit != nil {
			b.addEdges(n, n.Lit.Body)
		}
	}
	g.computeSCCs()
	return g
}

func (g *CallGraph) addNode(n *FuncNode) *FuncNode {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	if n.Name != "" {
		g.byName[n.Name] = n
	}
	return n
}

type graphBuilder struct {
	g *CallGraph
	// fieldFuncs maps a func-typed struct field object to every function
	// value the module stores into it.
	fieldFuncs map[*types.Var][]*FuncNode
	// sigFuncs maps a signature string to every function or literal used
	// as a value with that signature.
	sigFuncs map[string][]*FuncNode
	// methods maps a method name to every declared method node, for
	// interface-dispatch candidate search.
	methods map[string][]*FuncNode
	// curCall is the call expression currently being classified, recorded
	// on each edge it produces.
	curCall *ast.CallExpr
}

// addLitNodes registers a node for every function literal inside parent's
// body, named parent.funcN in depth-first source order.
func (b *graphBuilder) addLitNodes(parent *FuncNode) {
	if parent.Decl == nil || parent.Decl.Body == nil {
		return
	}
	n := 0
	ast.Inspect(parent.Decl.Body, func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		n++
		ln := b.g.addNode(&FuncNode{
			Name: fmt.Sprintf("%s.func%d", parent.Name, n),
			Pkg:  parent.Pkg,
			Lit:  lit,
			// Literals inherit the enclosing declaration's hotpath/coldpath
			// markers: a closure defined in a cold helper is cold.
			Coldpath: parent.Coldpath,
			Noinline: parent.Noinline,
			Parent:   parent,
		})
		b.g.byLit[lit] = ln
		return true
	})
}

// collectCandidates builds the dynamic-dispatch indexes.
func (b *graphBuilder) collectCandidates() {
	b.methods = map[string][]*FuncNode{}
	for _, n := range b.g.Nodes {
		if n.Decl != nil && n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 {
			b.methods[n.Decl.Name.Name] = append(b.methods[n.Decl.Name.Name], n)
		}
	}
	for _, pkg := range b.g.Mod.Pkgs {
		for _, f := range pkg.Files {
			b.collectFileCandidates(pkg, f)
		}
	}
}

func (b *graphBuilder) collectFileCandidates(pkg *Package, f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch node := node.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				if i >= len(node.Rhs) {
					break
				}
				sel, ok := unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field := fieldObject(pkg, sel)
				if field == nil {
					continue
				}
				if fn := b.resolveFuncExpr(pkg, node.Rhs[i]); fn != nil {
					b.fieldFuncs[field] = append(b.fieldFuncs[field], fn)
				}
			}
		case *ast.CompositeLit:
			for _, el := range node.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				field, _ := pkg.Info.Uses[key].(*types.Var)
				if field == nil || !field.IsField() {
					continue
				}
				if fn := b.resolveFuncExpr(pkg, kv.Value); fn != nil {
					b.fieldFuncs[field] = append(b.fieldFuncs[field], fn)
				}
			}
		case *ast.Ident:
			// A declared function referenced outside call position is a
			// value: it may flow anywhere a matching signature is invoked.
			if obj, ok := pkg.Info.Uses[node].(*types.Func); ok {
				if fn := b.g.byObj[obj.Origin()]; fn != nil && !isCallPosition(stack, node) {
					b.addSigCandidate(fn)
				}
			}
		case *ast.FuncLit:
			if fn := b.g.byLit[node]; fn != nil && !isCallPosition(stack, node) {
				b.addSigCandidate(fn)
			}
		}
		stack = append(stack, node)
		return true
	})
}

func (b *graphBuilder) addSigCandidate(fn *FuncNode) {
	key := b.sigKey(fn)
	if key == "" {
		return
	}
	for _, existing := range b.sigFuncs[key] {
		if existing == fn {
			return
		}
	}
	b.sigFuncs[key] = append(b.sigFuncs[key], fn)
}

// sigKey renders a node's signature (receivers excluded: a method value
// has its receiver bound) for value-candidate matching.
func (b *graphBuilder) sigKey(fn *FuncNode) string {
	var sig *types.Signature
	switch {
	case fn.Obj != nil:
		sig, _ = fn.Obj.Type().(*types.Signature)
	case fn.Lit != nil && fn.Pkg != nil:
		if tv, ok := fn.Pkg.Info.Types[fn.Lit]; ok {
			sig, _ = tv.Type.(*types.Signature)
		}
	}
	if sig == nil {
		return ""
	}
	// Drop the receiver: a bound method value is invoked with the
	// remaining parameters only.
	sig = types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(sig, nil)
}

// resolveFuncExpr resolves an expression to the function node it denotes:
// a function identifier, a bound method value, or a function literal.
func (b *graphBuilder) resolveFuncExpr(pkg *Package, e ast.Expr) *FuncNode {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return b.g.byObj[obj.Origin()]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			if obj, ok := sel.Obj().(*types.Func); ok {
				return b.g.byObj[obj.Origin()]
			}
		}
		// pkgname.Func
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return b.g.byObj[obj.Origin()]
		}
	case *ast.FuncLit:
		return b.g.byLit[e]
	}
	return nil
}

// fieldObject resolves sel to the struct field it denotes, or nil.
func fieldObject(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// isCallPosition reports whether id is the function operand of a call
// expression (stack holds ancestors, nearest last).
func isCallPosition(stack []ast.Node, id ast.Node) bool {
	cur := id
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			cur = parent
			continue
		case *ast.SelectorExpr:
			// method value position: x.M — M itself is not the call fun,
			// the selector is; keep climbing.
			if parent.Sel == cur || parent.X == cur {
				cur = parent
				continue
			}
			return false
		case *ast.CallExpr:
			return parent.Fun == cur
		default:
			return false
		}
	}
	return false
}

// addEdges walks one node's body and records every call. Function literal
// bodies are skipped: they belong to their own nodes.
func (b *graphBuilder) addEdges(caller *FuncNode, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(sub ast.Node) bool {
			switch sub := sub.(type) {
			case *ast.FuncLit:
				if sub != n {
					return false
				}
			case *ast.GoStmt:
				// The spawned call itself is a go-edge; its arguments are
				// evaluated synchronously in the caller.
				b.callEdge(caller, sub.Call, true)
				for _, arg := range sub.Call.Args {
					walk(arg, false)
				}
				if lit, ok := unparen(sub.Call.Fun).(*ast.FuncLit); ok {
					_ = lit // body handled by the literal's own node
				} else {
					walk(sub.Call.Fun, false)
				}
				return false
			case *ast.CallExpr:
				b.callEdge(caller, sub, inGo)
			}
			return true
		})
	}
	walk(body, false)
}

// unwrapInstantiation peels the type-argument index off an explicitly
// instantiated generic call target (f[int], pkg.Map[K, V]) so the callee
// resolves statically. Only operands that name a function are unwrapped:
// value indexing like handlers[i]() keeps its index and stays on the
// conservative paths.
func unwrapInstantiation(pkg *Package, fun ast.Expr) ast.Expr {
	var x ast.Expr
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		x = unparen(idx.X)
	case *ast.IndexListExpr:
		x = unparen(idx.X)
	default:
		return fun
	}
	switch op := x.(type) {
	case *ast.Ident:
		if _, ok := pkg.Info.Uses[op].(*types.Func); ok {
			return x
		}
	case *ast.SelectorExpr:
		if _, ok := pkg.Info.Uses[op.Sel].(*types.Func); ok {
			return x
		}
	}
	return fun
}

// callEdge classifies one call expression and records the edge(s).
func (b *graphBuilder) callEdge(caller *FuncNode, call *ast.CallExpr, isGo bool) {
	b.curCall = call
	pkg := caller.Pkg
	fun := unparen(call.Fun)

	// Conversions are not calls.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return
	}

	// Explicit instantiation (f[int](x), pkg.Map[K, V](m)): peel the
	// type-argument index so the callee resolves statically instead of
	// falling through to the unknown node.
	fun = unwrapInstantiation(pkg, fun)

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Builtin:
			return
		case *types.Func:
			b.edgeTo(caller, b.g.byObj[obj.Origin()], call.Pos(), EdgeStatic, isGo)
			return
		case *types.Var:
			// Plain func-typed variable or parameter: signature candidates.
			b.sigEdges(caller, call, obj.Type(), isGo)
			return
		case *types.Nil:
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				obj, _ := sel.Obj().(*types.Func)
				if obj == nil {
					break
				}
				if types.IsInterface(sel.Recv()) {
					b.ifaceEdges(caller, call, sel.Recv(), obj.Name(), isGo)
					return
				}
				// Methods on instantiated generic receivers resolve to the
				// instantiated object; the graph node is the declared one.
				b.edgeTo(caller, b.g.byObj[obj.Origin()], call.Pos(), EdgeStatic, isGo)
				return
			case types.FieldVal:
				if field, ok := sel.Obj().(*types.Var); ok {
					b.fieldEdges(caller, call, field, isGo)
					return
				}
			}
		}
		// pkgname.Func or interface-typed package var.
		switch obj := pkg.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			b.edgeTo(caller, b.g.byObj[obj.Origin()], call.Pos(), EdgeStatic, isGo)
			return
		case *types.Var:
			if obj.IsField() {
				b.fieldEdges(caller, call, obj, isGo)
			} else {
				b.sigEdges(caller, call, obj.Type(), isGo)
			}
			return
		}
	case *ast.FuncLit:
		// Immediately-invoked literal.
		b.edgeTo(caller, b.g.byLit[fun], call.Pos(), EdgeStatic, isGo)
		return
	}
	b.edgeTo(caller, b.g.Unknown, call.Pos(), EdgeUnknown, isGo)
}

// fieldEdges records edges to every function value stored into field, or
// to Unknown when the module never stores one.
func (b *graphBuilder) fieldEdges(caller *FuncNode, call *ast.CallExpr, field *types.Var, isGo bool) {
	cands := b.fieldFuncs[field]
	if len(cands) == 0 {
		b.edgeTo(caller, b.g.Unknown, call.Pos(), EdgeField, isGo)
		return
	}
	for _, c := range cands {
		b.edgeTo(caller, c, call.Pos(), EdgeField, isGo)
	}
}

// ifaceEdges records edges to the same-named method of every module type
// implementing the interface.
func (b *graphBuilder) ifaceEdges(caller *FuncNode, call *ast.CallExpr, iface types.Type, method string, isGo bool) {
	found := false
	for _, cand := range b.methods[method] {
		if cand.Obj == nil {
			continue
		}
		sig, ok := cand.Obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv()
		if types.Implements(recv.Type(), iface.Underlying().(*types.Interface)) {
			b.edgeTo(caller, cand, call.Pos(), EdgeIface, isGo)
			found = true
		}
	}
	if !found {
		b.edgeTo(caller, b.g.Unknown, call.Pos(), EdgeIface, isGo)
	}
}

// sigEdges records edges to every function value candidate with an
// identical signature.
func (b *graphBuilder) sigEdges(caller *FuncNode, call *ast.CallExpr, t types.Type, isGo bool) {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		b.edgeTo(caller, b.g.Unknown, call.Pos(), EdgeUnknown, isGo)
		return
	}
	key := types.TypeString(types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic()), nil)
	cands := b.sigFuncs[key]
	if len(cands) == 0 {
		b.edgeTo(caller, b.g.Unknown, call.Pos(), EdgeSig, isGo)
		return
	}
	for _, c := range cands {
		b.edgeTo(caller, c, call.Pos(), EdgeSig, isGo)
	}
}

func (b *graphBuilder) edgeTo(caller, callee *FuncNode, pos token.Pos, kind EdgeKind, isGo bool) {
	if callee == nil {
		callee = b.g.Unknown
		if kind == EdgeStatic {
			// A statically-resolved callee without a node is a function in
			// another module (stdlib): not represented.
			return
		}
	}
	e := &CallEdge{Caller: caller, Callee: callee, Pos: pos, Kind: kind, Go: isGo, Call: b.curCall}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// computeSCCs runs Tarjan's algorithm; components come out bottom-up
// (callees before callers), which is the summary computation order.
func (g *CallGraph) computeSCCs() {
	const unvisited = -1
	n := len(g.Nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []*FuncNode
	next := 0

	// Iterative Tarjan: recursion would overflow on adversarial (fuzzed)
	// call chains.
	type frame struct {
		v    *FuncNode
		edge int
	}
	var visit func(root *FuncNode)
	visit = func(root *FuncNode) {
		frames := []frame{{v: root}}
		index[root.ID] = next
		low[root.ID] = next
		next++
		stack = append(stack, root)
		onStack[root.ID] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(f.v.Out) {
				w := f.v.Out[f.edge].Callee
				f.edge++
				if index[w.ID] == unvisited {
					index[w.ID] = next
					low[w.ID] = next
					next++
					stack = append(stack, w)
					onStack[w.ID] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w.ID] {
					if index[w.ID] < low[f.v.ID] {
						low[f.v.ID] = index[w.ID]
					}
				}
				continue
			}
			// f.v finished.
			if low[f.v.ID] == index[f.v.ID] {
				var comp []*FuncNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w.ID] = false
					w.SCC = len(g.SCCs)
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				g.SCCs = append(g.SCCs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v.ID] < low[p.v.ID] {
					low[p.v.ID] = low[f.v.ID]
				}
			}
		}
	}
	for _, v := range g.Nodes {
		if index[v.ID] == unvisited {
			visit(v)
		}
	}
}

// WriteDOT renders the graph in Graphviz DOT form. Approximate edges are
// dashed; go-spawned calls are bold; hotpath nodes are filled.
func (g *CallGraph) WriteDOT(w io.Writer) error {
	var buf strings.Builder
	buf.WriteString("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	for _, n := range g.Nodes {
		attrs := ""
		switch {
		case n == g.Unknown:
			attrs = ", style=dotted"
		case n.Hotpath:
			attrs = ", style=filled, fillcolor=\"#ffd7d7\""
		case n.Coldpath:
			attrs = ", style=filled, fillcolor=\"#d7e4ff\""
		}
		fmt.Fprintf(&buf, "  n%d [label=%q%s];\n", n.ID, n.Name, attrs)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			style := ""
			if e.Kind.Approx() {
				style = ", style=dashed"
			}
			if e.Go {
				style += ", penwidth=2"
			}
			fmt.Fprintf(&buf, "  n%d -> n%d [label=%q%s];\n", e.Caller.ID, e.Callee.ID, e.Kind.String(), style)
		}
	}
	buf.WriteString("}\n")
	_, err := io.WriteString(w, buf.String())
	return err
}

// edgesSummary renders a node's outgoing edges compactly for tests:
// "callee1[kind] callee2[kind,go]" sorted by callee name.
func (n *FuncNode) edgesSummary() string {
	parts := make([]string, 0, len(n.Out))
	for _, e := range n.Out {
		tag := e.Kind.String()
		if e.Go {
			tag += ",go"
		}
		parts = append(parts, fmt.Sprintf("%s[%s]", e.Callee.Name, tag))
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
