package main

import (
	"reflect"
	"testing"
)

func TestTypedValue(t *testing.T) {
	cases := []struct {
		raw  string
		want any
	}{
		{"42", int64(42)},
		{"-7", int64(-7)},
		{"true", true},
		{"false", false},
		{"hello", "hello"},
		{"1,2,3", []int64{1, 2, 3}},
		{"1, 2, 3", []int64{1, 2, 3}},
		{"a,b", "a,b"}, // non-numeric list stays a string
	}
	for _, c := range cases {
		if got := typedValue(c.raw); !reflect.DeepEqual(got, c.want) {
			t.Errorf("typedValue(%q) = %#v, want %#v", c.raw, got, c.want)
		}
	}
}

func TestParamFlags(t *testing.T) {
	p := paramFlags{}
	if err := p.Set("id=42"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("ids=1,2"); err != nil {
		t.Fatal(err)
	}
	if p["id"] != int64(42) {
		t.Fatalf("id = %#v", p["id"])
	}
	if !reflect.DeepEqual(p["ids"], []int64{1, 2}) {
		t.Fatalf("ids = %#v", p["ids"])
	}
	if err := p.Set("malformed"); err == nil {
		t.Fatal("malformed param accepted")
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}
