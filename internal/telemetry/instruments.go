package telemetry

import "time"

// Default is the process-wide registry behind GET /metrics. Engine-level
// instruments below record into it from wherever queries run (HTTP server,
// REPL, CLI) — the exposition endpoint only reads.
var Default = NewRegistry()

// Engine-level instruments (the Figure 8 / Table 2 quantities, live).
var (
	// QueriesTotal counts completed queries (successful or not).
	QueriesTotal = Default.NewCounter("vs_queries_total",
		"Total queries executed.", nil)
	// QueriesFailed counts queries that returned an error.
	QueriesFailed = Default.NewCounter("vs_queries_failed_total",
		"Queries that failed with an error.", nil)
	// QueriesInFlight gauges currently executing queries.
	QueriesInFlight = Default.NewGauge("vs_queries_in_flight",
		"Queries currently executing.", nil)
	// ExpandMatrixBytes accumulates peak reachability-matrix bytes per
	// VExpand call (Table 2's memory column, as a running total).
	ExpandMatrixBytes = Default.NewCounter("vs_expand_matrix_bytes_total",
		"Cumulative peak bit-matrix bytes allocated by VExpand calls.", nil)
	// SpillWriteBytes / SpillWriteFiles / SpillReadBytes account the
	// out-of-core path (§5.3).
	SpillWriteBytes = Default.NewCounter("vs_spill_write_bytes_total",
		"Bytes written to spill files.", nil)
	SpillWriteFiles = Default.NewCounter("vs_spill_write_files_total",
		"Spill files created.", nil)
	SpillReadBytes = Default.NewCounter("vs_spill_read_bytes_total",
		"Bytes read back from spill files.", nil)
	// PanicsRecovered counts handler panics caught by the server's recover
	// middleware (each one also restores the in-flight gauge and registry
	// entry via the unwinding defers).
	PanicsRecovered = Default.NewCounter("vs_panics_total",
		"Handler panics recovered by the HTTP server.", nil)
)

// Engine-level matrix-cache and operator-scheduler instruments.
var (
	// MatrixCacheHits counts expansions answered by the engine-level
	// reachability-matrix cache (cross-query reuse; the query-local
	// symmetry memo reports separately as memo=hit spans).
	MatrixCacheHits = Default.NewCounter("vs_matrix_cache_hits_total",
		"Expansions answered by the engine-level reachability-matrix cache.", nil)
	// MatrixCacheEvictions counts LRU evictions from the matrix cache.
	MatrixCacheEvictions = Default.NewCounter("vs_matrix_cache_evictions_total",
		"Reachability matrices evicted from the engine-level cache.", nil)
	// MatrixCacheBytes gauges the cache's current resident bytes.
	MatrixCacheBytes = Default.NewGauge("vs_matrix_cache_bytes",
		"Bytes currently held by the engine-level reachability-matrix cache.", nil)
	// ExecParallelExpands counts expand operators that started while
	// another expand of the same query was already running — direct
	// evidence of the scheduler overlapping independent VExpands.
	ExecParallelExpands = Default.NewCounter("vs_exec_parallel_expands",
		"Expand operators that ran concurrently with another expand of the same query.", nil)
)

// Per-stage latency histograms: one family, labeled by stage, matching the
// engine.Timings breakdown (Figure 8's components).
var (
	StageScan        = newStage("scan")
	StageExpand      = newStage("expand")
	StageUpdateVisit = newStage("update_visit")
	StageIntersect   = newStage("intersect")
	StageAggregate   = newStage("aggregate")
	StageTotal       = newStage("total")
)

func newStage(stage string) *Histogram {
	return Default.NewHistogram("vs_query_stage_seconds",
		"Per-stage query latency by stage (scan, expand, update_visit, intersect, aggregate, total).",
		Labels{"stage": stage}, nil)
}

// ObserveStages records one query's stage breakdown into the per-stage
// histograms. Zero-duration stages still observe (they are real samples of
// a stage that did no work).
func ObserveStages(scan, expand, updateVisit, intersect, aggregate, total time.Duration) {
	StageScan.Observe(scan.Seconds())
	StageExpand.Observe(expand.Seconds())
	StageUpdateVisit.Observe(updateVisit.Seconds())
	StageIntersect.Observe(intersect.Seconds())
	StageAggregate.Observe(aggregate.Seconds())
	StageTotal.Observe(total.Seconds())
}
