package vslint

import (
	"strings"
	"testing"
)

// counterFixture gives guard inference its witness: Inc writes Counter.n
// with Counter.mu held, so n is inferred guarded-by mu.
const counterFixture = `package seed

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}
`

// srcLine returns the 1-based line of the first source line containing
// marker, so assertions survive fixture edits.
func srcLine(t *testing.T, src, marker string) int {
	t.Helper()
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, marker) {
			return i + 1
		}
	}
	t.Fatalf("marker %q not in fixture", marker)
	return 0
}

func findingsOf(res *Result, analyzer string) []Finding {
	var out []Finding
	for _, f := range res.Findings {
		if f.Analyzer == analyzer {
			out = append(out, f)
		}
	}
	return out
}

// TestGuardedByFlagsUnlockedAccessOnSpawnedGoroutine is the seeded-race
// acceptance fixture: a field written under a mutex in one method, written
// without it in a function that runs on a spawned goroutine.
func TestGuardedByFlagsUnlockedAccessOnSpawnedGoroutine(t *testing.T) {
	res := checkModuleSrc(t, counterFixture+`
func (c *Counter) racyAdd() {
	c.n++
}

func Spawn(c *Counter) {
	go c.racyAdd()
}
`, Options{})
	wantFinding(t, res.Findings, "guarded-by", "write of seed.Counter.n without holding seed.Counter.mu")
	wantFinding(t, res.Findings, "guarded-by", "inferred from the guarded write at seed.go:12")
	wantFinding(t, res.Findings, "guarded-by", "runs on the goroutine spawned at")
	wantFinding(t, res.Findings, "guarded-by", "racyAdd")
}

// TestGuardedByIsPathSensitive: the same field accessed twice in one
// function — inside the critical section (clean) and after the Unlock
// (flagged). The lockset must distinguish the two program points.
func TestGuardedByIsPathSensitive(t *testing.T) {
	src := counterFixture + `
func (c *Counter) flush() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.n++ // after unlock
}

func SpawnFlush(c *Counter) {
	go c.flush()
}
`
	res := checkModuleSrc(t, src, Options{})
	got := findingsOf(res, "guarded-by")
	if len(got) != 1 {
		t.Fatalf("want exactly 1 guarded-by finding, got %d:\n%s", len(got), renderFindings(got))
	}
	if want := srcLine(t, src, "after unlock"); got[0].Pos.Line != want {
		t.Errorf("finding at line %d, want the post-unlock write at line %d", got[0].Pos.Line, want)
	}
}

// TestGuardedByHoldsAcrossDeferredUnlock: Lock + defer Unlock keeps the
// lock held to the end of the function, so accesses after the defer are
// clean even in goroutine-reachable code.
func TestGuardedByHoldsAcrossDeferredUnlock(t *testing.T) {
	res := checkModuleSrc(t, counterFixture+`
func (c *Counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func SpawnGet(c *Counter) {
	go func() { _ = c.get() }()
}
`, Options{})
	wantNoFinding(t, res.Findings, "guarded-by")
}

// TestGuardedByPinWithoutInference: //vs:guardedby(mu) declares the guard
// even when no write under lock exists to infer it from.
func TestGuardedByPinWithoutInference(t *testing.T) {
	res := checkModuleSrc(t, `package seed

import "sync"

type Box struct {
	mu sync.Mutex
	v  int //vs:guardedby(mu)
}

func peek(b *Box) int {
	return b.v
}

func Spawn(b *Box) {
	go func() { _ = peek(b) }()
}
`, Options{})
	wantFinding(t, res.Findings, "guarded-by", "read of seed.Box.v without holding seed.Box.mu")
	wantFinding(t, res.Findings, "guarded-by", "pinned by //vs:guardedby")
}

// TestGuardedByOptOut: //vs:guardedby(none) silences inference for a field
// that is deliberately accessed without the sibling mutex.
func TestGuardedByOptOut(t *testing.T) {
	res := checkModuleSrc(t, `package seed

import "sync"

type Box struct {
	mu sync.Mutex
	v  int //vs:guardedby(none)
}

func (b *Box) set() {
	b.mu.Lock()
	b.v = 1
	b.mu.Unlock()
}

func racy(b *Box) {
	b.v = 2
}

func Spawn(b *Box) {
	go racy(b)
}
`, Options{})
	wantNoFinding(t, res.Findings, "guarded-by")
}

// TestGuardedByOwnedLocalExempt: writes through a fresh, non-escaping
// local are construction, not sharing.
func TestGuardedByOwnedLocalExempt(t *testing.T) {
	res := checkModuleSrc(t, counterFixture+`
func build() {
	c := &Counter{}
	c.n = 7
	c.Inc()
}

func Spawn() {
	go build()
}
`, Options{})
	wantNoFinding(t, res.Findings, "guarded-by")
}

// TestGuardedByNolintSuppression is the suppressed-negative case: the same
// seeded race as the positive fixture, silenced by an inline //vs:nolint.
func TestGuardedByNolintSuppression(t *testing.T) {
	res := checkModuleSrc(t, counterFixture+`
func (c *Counter) racyAdd() {
	c.n++ //vs:nolint(guarded-by) approximate stats counter, torn updates acceptable
}

func Spawn(c *Counter) {
	go c.racyAdd()
}
`, Options{})
	wantNoFinding(t, res.Findings, "guarded-by")
}

// TestGuardedByConfigErrors: a pin naming a missing mutex field, a pin on
// a struct with no mutex at all, and a bare //vs:guardedby are all
// configuration mistakes worth their own findings.
func TestGuardedByConfigErrors(t *testing.T) {
	res := checkModuleSrc(t, `package seed

import "sync"

type A struct {
	mu sync.Mutex
	v  int //vs:guardedby(lock)
}

type B struct {
	v int //vs:guardedby(mu)
}

type C struct {
	mu sync.Mutex
	w  int //vs:guardedby
}
`, Options{})
	wantFinding(t, res.Findings, "guarded-by", `seed.A has no sync.Mutex/RWMutex field named "lock"`)
	wantFinding(t, res.Findings, "guarded-by", "seed.B has no sync.Mutex/RWMutex field")
	wantFinding(t, res.Findings, "guarded-by", "malformed //vs:guardedby")
}

// TestGuardedByLocksetPropagatesThroughCalls: the access sits two calls
// below the Lock — the entry-lockset propagation must carry the held mutex
// down the chain so no finding fires.
func TestGuardedByLocksetPropagatesThroughCalls(t *testing.T) {
	res := checkModuleSrc(t, counterFixture+`
func (c *Counter) locked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.step()
}

func (c *Counter) step() {
	c.bump()
}

func (c *Counter) bump() {
	c.n++
}

func Spawn(c *Counter) {
	go c.locked()
}
`, Options{})
	wantNoFinding(t, res.Findings, "guarded-by")
}
