// Command vsserve serves a stored graph as a read-only HTTP query service.
//
// Usage:
//
//	vsserve -data ./data/lastfm -addr :7474
//	curl -s localhost:7474/stats
//	curl -s localhost:7474/metrics
//	curl -s localhost:7474/query -d '{"query":"MATCH (p:SIGA)-[:knows*..3]-(q:SIGA) RETURN COUNT(DISTINCT p,q)"}'
//
// Operational flags:
//
//	-wire-addr :7688             framed binary streaming protocol listener (off by default);
//	                             query with vsquery -wire or the repro/client package
//	-fetch-batch 256             rows per streamed-cursor fetch batch (bounds per-cursor memory)
//	-max-request-bytes 1048576   cap HTTP request bodies; larger bodies get a clear 400
//	-debug-addr 127.0.0.1:6060   net/http/pprof endpoints (off by default)
//	-slow-query 500ms            log the operator span tree of slower queries
//	-access-log                  structured access log with request IDs (on by default)
//	-query-timeout 30s           cancel queries exceeding this deadline → 504 (0 = none)
//	-cache-bytes 64MiB           engine-level reachability-matrix cache (-1 = off)
//	-memory-budget N             cap live intermediate bytes across queries (0 = unlimited)
//	-stats-out stats.jsonl       append per-operator est-vs-actual observations per query
//	                             (synced to disk on shutdown; write errors surface at close)
//	-telemetry-interval 1s       metric time-series sample period
//	-telemetry-window 300        samples retained in the time-series ring
//	-alert-slo 1s                fire the slow-query alert when window p95 exceeds this (0 = off)
//	-alert-memory-frac 0.9       fire the memory-pressure alert above this accountant occupancy
//	-alert-evictions 100         fire the cache-storm alert above this eviction rate per second (0 = off)
//
// Introspection: GET /debug/queries lists in-flight queries (live
// per-operator progress) and the completed history; DELETE
// /debug/queries/{id} kills a running query. GET /debug/timeseries serves
// the metric history window with rate/percentile reductions, GET
// /debug/dash is a self-contained live dashboard (SSE-fed), and cmd/vstop
// is the terminal equivalent.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vsserve: ")
	var (
		data         = flag.String("data", "", "graph directory written by vsgen (required)")
		addr         = flag.String("addr", ":7474", "listen address")
		wireAddr     = flag.String("wire-addr", "", "framed binary wire-protocol listen address (empty = off)")
		fetchBatch   = flag.Int("fetch-batch", session.DefaultFetchBatch, "rows per streamed-cursor fetch batch")
		maxReqBytes  = flag.Int64("max-request-bytes", server.DefaultMaxRequestBytes, "maximum HTTP request body bytes")
		workers      = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		debugAddr    = flag.String("debug-addr", "", "optional net/http/pprof listen address (e.g. 127.0.0.1:6060)")
		slowQuery    = flag.Duration("slow-query", 0, "log the span tree of queries slower than this (0 = off)")
		accessLog    = flag.Bool("access-log", true, "structured access log with request IDs")
		queryTimeout = flag.Duration("query-timeout", 0, "cancel queries exceeding this deadline with 504 (0 = none)")
		cacheBytes   = flag.Int64("cache-bytes", engine.DefaultCacheBytes, "engine-level reachability-matrix cache bytes (0 or negative = off)")
		memoryBudget = flag.Int64("memory-budget", 0, "cap live intermediate bytes across queries (0 = unlimited)")
		statsOut     = flag.String("stats-out", "", "append per-operator est-vs-actual cardinality observations (JSONL) of every completed query to this file")
		tsInterval   = flag.Duration("telemetry-interval", telemetry.DefaultSampleInterval, "metric time-series sample period")
		tsWindow     = flag.Int("telemetry-window", telemetry.DefaultSampleCapacity, "samples retained in the metric time-series ring")
		alertSLO     = flag.Duration("alert-slo", time.Second, "fire the slow-query alert when the window p95 latency exceeds this (0 = off)")
		alertMemFrac = flag.Float64("alert-memory-frac", 0.9, "fire the memory-pressure alert above this fraction of the memory budget")
		alertEvict   = flag.Float64("alert-evictions", 100, "fire the cache-eviction-storm alert above this evictions/s over the trailing minute (0 = off)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := storage.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	cache := *cacheBytes
	if cache < 0 {
		cache = 0
	}
	eng := engine.New(g, engine.Options{
		Workers:      *workers,
		CacheBytes:   cache,
		MemoryBudget: *memoryBudget,
	})
	if *statsOut != "" {
		sink, err := engine.OpenStatsSink(*statsOut)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if cerr := sink.Close(); cerr != nil {
				log.Printf("stats sink close: %v", cerr)
			}
		}()
		eng.SetStatsSink(sink)
	}

	var logger *slog.Logger
	if *accessLog || *slowQuery > 0 {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	// Time-series ring over the default registry, metered against the
	// engine's accountant, with the threshold watchers attached; the
	// accountant gauges join the registry so the ring can sample them.
	telemetry.SetMemoryStats(func() (used, limit int64) {
		return eng.MemoryInUse(), eng.MemoryLimit()
	})
	ts := telemetry.NewTimeSeries(telemetry.Default, *tsInterval, *tsWindow, eng.Accountant())
	var rules []telemetry.AlertRule
	if *alertSLO > 0 {
		rules = append(rules, telemetry.SLOBurnRule(*alertSLO, 60))
	}
	rules = append(rules, telemetry.MemoryPressureRule(func() (used, limit int64) {
		return eng.MemoryInUse(), eng.MemoryLimit()
	}, *alertMemFrac))
	if *alertEvict > 0 {
		rules = append(rules, telemetry.CacheEvictionStormRule(*alertEvict, 60))
	}
	watcher := telemetry.NewWatcher(telemetry.Default, logger, rules...)
	ts.AddWatcher(watcher)
	ts.Start()
	defer ts.Close()

	// One session service behind both transports: the HTTP handlers and
	// the wire listener share query timeout, cursor batch size, and the
	// engine accountant metering cursor buffers.
	svc := session.NewService(eng, session.Options{
		QueryTimeout: *queryTimeout,
		FetchBatch:   *fetchBatch,
	})
	srv := server.NewWithService(svc, server.Options{
		Logger:          logger,
		SlowQuery:       *slowQuery,
		MaxRequestBytes: *maxReqBytes,
		TimeSeries:      ts,
		Alerts:          watcher,
	})

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatal(err)
		}
		ws := wire.NewServer(svc, wire.Options{Logger: logger})
		fmt.Printf("wire protocol on %s\n", wln.Addr())
		go func() { log.Fatal(ws.Serve(wln)) }()
	}

	// Listen before announcing so `-addr 127.0.0.1:0` prints the actual
	// bound port (the verify.sh smoke step scrapes this line).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %s (|V|=%d |E|=%d) on %s\n", *data, g.NumVertices(), g.NumEdges(), ln.Addr())
	log.Fatal(http.Serve(ln, srv))
}

// serveDebug exposes the pprof endpoints and a second /metrics on a
// dedicated (typically loopback-only) listener, keeping profiling off the
// public query port.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = telemetry.Default.WriteTo(w)
	})
	dbg := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	log.Printf("debug server (pprof, /metrics) on %s", addr)
	log.Fatal(dbg.ListenAndServe())
}
