// Command vslint runs VertexSurge's project-specific static analysis over
// the module containing the current directory. It is built entirely on the
// stdlib go/* packages — see internal/vslint for the analyzers.
//
// Usage:
//
//	go run ./cmd/vslint ./...
//	go run ./cmd/vslint ./internal/storage ./internal/vexpand/...
//
// Exit status is 1 when any finding survives //vs:nolint suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/vslint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vslint [-list] [packages]\n\npackages default to ./...\n\nanalyzers:\n")
		for _, a := range vslint.All() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range vslint.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := vslint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := vslint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := mod.Match(flag.Args())
	if err != nil {
		fatal(err)
	}

	total := 0
	for _, pkg := range pkgs {
		for _, f := range vslint.CheckPackage(pkg, vslint.All()) {
			total++
			fmt.Printf("%s:%d:%d: [%s] %s\n", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "vslint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

func relPath(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
