package engine

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/telemetry"
)

func statsPattern() *pattern.Pattern {
	return &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "p", Labels: []string{"SIGA"}},
			{Name: "q", Labels: []string{"SIGB"}},
		},
		Edges: []pattern.Edge{
			{Src: "p", Dst: "q", D: knowsDet(1, 2)},
		},
	}
}

// TestStatsSinkObservations runs a match with a sink attached and decodes
// the JSONL: one versioned record per plan operator, stamped with the
// pattern signature and graph scale, expands carrying est-vs-actual rows.
func TestStatsSinkObservations(t *testing.T) {
	g := socialGraph(t)
	e := New(g, Options{})
	var buf bytes.Buffer
	e.SetStatsSink(NewStatsSink(&buf))

	pat := statsPattern()
	if _, err := e.MatchContext(context.Background(), pat, MatchOptions{CountOnly: true}); err != nil {
		t.Fatal(err)
	}

	var recs []StatsObservation
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec StatsObservation
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		t.Fatal("sink received no observations")
	}
	byOp := map[string]int{}
	for _, rec := range recs {
		byOp[rec.Op]++
	}
	if byOp["plan"] != 1 {
		t.Fatalf("plan records = %d, want 1 (ops %v)", byOp["plan"], byOp)
	}
	if byOp["scan"] != len(pat.Vertices) {
		t.Fatalf("scan records = %d, want one per pattern vertex (%d)", byOp["scan"], len(pat.Vertices))
	}
	if byOp["expand"] == 0 {
		t.Fatalf("no expand records (ops %v)", byOp)
	}

	sig := PatternSignature(pat)
	sawExpand := false
	for _, rec := range recs {
		if rec.Schema != StatsSchemaVersion {
			t.Fatalf("record schema = %d, want %d", rec.Schema, StatsSchemaVersion)
		}
		if rec.Pattern != sig {
			t.Fatalf("record pattern = %q, want %q", rec.Pattern, sig)
		}
		if rec.GraphVertices != g.NumVertices() || rec.GraphEdges != g.NumEdges() {
			t.Fatalf("record graph scale = %d/%d, want %d/%d",
				rec.GraphVertices, rec.GraphEdges, g.NumVertices(), g.NumEdges())
		}
		if rec.TsUnixMs == 0 || rec.Op == "" {
			t.Fatalf("record missing stamp: %+v", rec)
		}
		if rec.Op == "expand" {
			sawExpand = true
			if rec.EstRows <= 0 || rec.ActualRows <= 0 {
				t.Fatalf("expand record without est/actual rows: %+v", rec)
			}
		}
	}
	if !sawExpand {
		t.Fatalf("no expand observation among %d records", len(recs))
	}
}

// TestStatsSinkQueryID checks the registry id rides along when the match
// runs under a registered query, and stays 0 otherwise.
func TestStatsSinkQueryID(t *testing.T) {
	g := figure3(t)
	e := New(g, Options{})
	var buf bytes.Buffer
	e.SetStatsSink(NewStatsSink(&buf))

	qi := telemetry.DefaultQueries.Register("stats test", "", nil)
	ctx := telemetry.WithQuery(context.Background(), qi)
	if _, err := e.MatchContext(ctx, statsPattern(), MatchOptions{CountOnly: true}); err != nil {
		t.Fatal(err)
	}
	telemetry.DefaultQueries.Complete(qi, 0, nil)

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no observations written")
	}
	var rec StatsObservation
	if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.QueryID != qi.ID() {
		t.Fatalf("record query_id = %d, want %d", rec.QueryID, qi.ID())
	}

	buf.Reset()
	if _, err := e.MatchContext(context.Background(), statsPattern(), MatchOptions{CountOnly: true}); err != nil {
		t.Fatal(err)
	}
	sc = bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no observations written for unregistered match")
	}
	var rec2 StatsObservation
	if err := json.Unmarshal(sc.Bytes(), &rec2); err != nil {
		t.Fatal(err)
	}
	if rec2.QueryID != 0 {
		t.Fatalf("unregistered match query_id = %d, want 0", rec2.QueryID)
	}
}

func TestPatternSignatureCanonical(t *testing.T) {
	a := &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "x", Labels: []string{"SIGB", "SIGA"}},
			{Name: "y", Labels: []string{"Person"}},
		},
		Edges: []pattern.Edge{{Src: "x", Dst: "y", D: knowsDet(1, 3)}},
	}
	b := &pattern.Pattern{
		Vertices: []pattern.Vertex{
			{Name: "p", Labels: []string{"SIGA", "SIGB"}},
			{Name: "q", Labels: []string{"Person"}},
		},
		Edges: []pattern.Edge{{Src: "p", Dst: "q", D: knowsDet(1, 3)}},
	}
	sa, sb := PatternSignature(a), PatternSignature(b)
	if sa != sb {
		t.Fatalf("signatures differ for renamed/reordered patterns:\n%s\n%s", sa, sb)
	}
	// Property filters change selectivity, so they must change the signature.
	a.Vertices[0].PropEq = map[string]any{"id": int64(1)}
	if PatternSignature(a) == sb {
		t.Fatal("property-filtered pattern shares a signature with unfiltered")
	}
}

func TestStatsSinkNilSafe(t *testing.T) {
	var s *StatsSink
	if err := s.Observe(0, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// failingWriter fails every write after the first n bytes-worth of calls.
type failingWriter struct {
	fails bool
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.fails {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

// syncCloser records the Sync/Close sequence a clean shutdown must make.
type syncCloser struct {
	calls   []string
	syncErr error
}

func (c *syncCloser) Sync() error {
	c.calls = append(c.calls, "sync")
	return c.syncErr
}

func (c *syncCloser) Close() error {
	c.calls = append(c.calls, "close")
	return nil
}

// TestStatsSinkWriteErrorSurfacesAtClose (satellite S2): a write failure
// during Observe is returned there AND remembered, so Close reports it —
// a sink whose disk filled mid-run cannot report a clean shutdown.
func TestStatsSinkWriteErrorSurfacesAtClose(t *testing.T) {
	g := socialGraph(t)
	e := New(g, Options{})
	w := &failingWriter{}
	sink := NewStatsSink(w)
	e.SetStatsSink(sink)

	// Healthy write first: no error recorded.
	if _, err := e.MatchContext(context.Background(), statsPattern(), MatchOptions{CountOnly: true}); err != nil {
		t.Fatal(err)
	}

	w.fails = true
	res, err := e.MatchContext(context.Background(), statsPattern(), MatchOptions{CountOnly: true})
	// Statistics are advisory: the query itself must still succeed.
	if err != nil || res == nil {
		t.Fatalf("query failed on stats write error: %v", err)
	}

	cerr := sink.Close()
	if cerr == nil {
		t.Fatal("Close reported success after a failed Observe write")
	}
	if !strings.Contains(cerr.Error(), "disk full") {
		t.Fatalf("Close error %q does not carry the write failure", cerr)
	}
	// Close must stay idempotent-safe on the error path.
	if cerr2 := sink.Close(); cerr2 == nil {
		t.Fatal("second Close dropped the remembered write error")
	}
}

// TestStatsSinkCloseSyncs (satellite S2): Close flushes to stable storage
// before closing, and a sync failure surfaces.
func TestStatsSinkCloseSyncs(t *testing.T) {
	sc := &syncCloser{}
	s := NewStatsSink(io.Discard)
	s.c = sc
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sc.calls) != 2 || sc.calls[0] != "sync" || sc.calls[1] != "close" {
		t.Fatalf("Close sequence = %v, want [sync close]", sc.calls)
	}

	sc2 := &syncCloser{syncErr: errors.New("io error")}
	s2 := NewStatsSink(io.Discard)
	s2.c = sc2
	err := s2.Close()
	if err == nil || !strings.Contains(err.Error(), "io error") {
		t.Fatalf("sync failure not surfaced: %v", err)
	}
	// The file still gets closed even when Sync fails.
	if len(sc2.calls) != 2 || sc2.calls[1] != "close" {
		t.Fatalf("Close sequence on sync failure = %v", sc2.calls)
	}
}
